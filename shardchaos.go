package forkoram

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"forkoram/internal/faults"
	"forkoram/internal/rng"
	"forkoram/internal/wal"
)

// ShardedCrashChaosConfig parameterizes RunShardedCrashChaos: the
// crash-at-every-point campaign of crashchaos.go lifted to a
// ShardedService fleet. Kills land in ONE shard's supervisor at a time
// (each shard has its own crash plan over its own journal), which is
// exactly the failure the sharded design must isolate: while a shard is
// down, every sibling is probed for reads AND writes before the dead
// shard is restarted from its surviving stores.
type ShardedCrashChaosConfig struct {
	// Seed derives every schedule's workload, fleet, crash and fault
	// seeds.
	Seed uint64
	// Schedules is the number of independent crash schedules (default
	// 100). Each schedule runs once per Device variant (2×Schedules
	// fleet lifetimes).
	Schedules int
	// Ops is the number of client operations per schedule (default 64).
	Ops int
	// Blocks / BlockSize size the GLOBAL address space (defaults 60/32).
	Blocks    uint64
	BlockSize int
	// Shards is the fleet width (default 3).
	Shards int
	// MaxCrashes bounds the kills injected per schedule across the whole
	// fleet (default 4); the budget is shared so schedules stay bounded
	// no matter how wide the fleet is.
	MaxCrashes int
	// Faults additionally runs half the schedules with low-rate
	// transient storage faults on every shard (per-shard fault epochs),
	// composing in-process supervised healing with shard death.
	Faults bool
}

func (c ShardedCrashChaosConfig) withDefaults() ShardedCrashChaosConfig {
	if c.Schedules == 0 {
		c.Schedules = 100
	}
	if c.Ops == 0 {
		c.Ops = 64
	}
	if c.Blocks == 0 {
		c.Blocks = 60
	}
	if c.BlockSize == 0 {
		c.BlockSize = 32
	}
	if c.Shards == 0 {
		c.Shards = 3
	}
	if c.MaxCrashes == 0 {
		c.MaxCrashes = 4
	}
	return c
}

// ShardedCrashReport aggregates a RunShardedCrashChaos campaign.
type ShardedCrashReport struct {
	Schedules int    // fleet lifetimes executed (2× config.Schedules)
	Shards    int    // fleet width
	Ops       uint64 // client operations attempted
	Acked     uint64 // acknowledged mutations the oracle holds the fleet to

	Crashes    uint64                 // kills injected (all shards)
	PointHits  [numCrashPoints]uint64 // kills per CrashPoint
	ShardKills []uint64               // kills per shard index
	Restarts   uint64                 // RestartShard cold starts that came up

	// DownEvents counts distinct one-or-more-shards-down episodes;
	// SiblingReads/SiblingWrites the operations served by healthy
	// siblings WHILE a shard was down (the isolation property this
	// campaign exists to certify — both stay comfortably nonzero).
	DownEvents    uint64
	SiblingReads  uint64
	SiblingWrites uint64

	Recoveries  uint64 // in-process supervised restores across all shards
	ReplayedOps uint64
	Checkpoints uint64

	LostAcks          uint64
	SilentCorruptions uint64
	Violations        []string
}

// Ok reports whether the campaign finished with no violations.
func (r *ShardedCrashReport) Ok() bool { return len(r.Violations) == 0 }

func (r *ShardedCrashReport) violate(format string, args ...any) {
	if len(r.Violations) < 20 {
		r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
	}
}

// String renders the report for the CLI.
func (r *ShardedCrashReport) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "sharded-crash-chaos: %d fleet lifetimes x %d shards, %d ops, %d acked mutations\n",
		r.Schedules, r.Shards, r.Ops, r.Acked)
	fmt.Fprintf(&b, "  crashes: %d injected (", r.Crashes)
	for p := 0; p < numCrashPoints; p++ {
		if p > 0 {
			fmt.Fprintf(&b, ", ")
		}
		fmt.Fprintf(&b, "%d %s", r.PointHits[p], CrashPoint(p))
	}
	fmt.Fprintf(&b, ")\n  per-shard kills: %v, %d shard restarts\n", r.ShardKills, r.Restarts)
	fmt.Fprintf(&b, "  isolation: %d shard-down episodes; siblings served %d reads + %d writes while a shard was down\n",
		r.DownEvents, r.SiblingReads, r.SiblingWrites)
	fmt.Fprintf(&b, "  healing: %d in-process recoveries, %d journal records replayed, %d checkpoints\n",
		r.Recoveries, r.ReplayedOps, r.Checkpoints)
	fmt.Fprintf(&b, "  lost acknowledged writes: %d, silent corruptions: %d\n",
		r.LostAcks, r.SilentCorruptions)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  VIOLATION: %s\n", v)
	}
	if r.Ok() {
		fmt.Fprintf(&b, "  ok: every acknowledged write survived every shard death\n")
	}
	return b.String()
}

// shardKillPlan arms kills at pseudo-random crash-hook consultations of
// ONE shard's supervisor (same spreading discipline as crashPlan). The
// kill budget is shared across the fleet through an atomic counter:
// each shard's hook runs on that shard's own supervisor goroutine.
type shardKillPlan struct {
	mu     sync.Mutex // serializes concurrent-stage consultations (see crashPlan.mu)
	wl     *rng.Source
	store  *wal.MemStore
	budget *atomic.Int64
	count  uint64
	next   uint64
	hits   [numCrashPoints]uint64
	kills  uint64
}

func newShardKillPlan(seed uint64, budget *atomic.Int64, span uint64) *shardKillPlan {
	p := &shardKillPlan{wl: rng.New(seed), budget: budget}
	p.next = 1 + p.wl.Uint64n(span)
	return p
}

// fire consumes one unit of the fleet-wide kill budget if this
// consultation is armed.
func (p *shardKillPlan) fire() bool {
	p.count++
	if p.count < p.next || p.budget.Load() <= 0 {
		return false
	}
	if p.budget.Add(-1) < 0 {
		p.budget.Add(1) // lost the race for the last unit
		return false
	}
	p.next = p.count + 1 + p.wl.Uint64n(24)
	return true
}

// hook is the shard's ServiceConfig.crashHook; a firing kill also tears
// the shard's unsynced journal buffer at a random byte boundary.
func (p *shardKillPlan) hook(pt CrashPoint) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.fire() {
		return false
	}
	p.hits[pt]++
	p.kills++
	p.store.Crash(int(p.wl.Uint64n(uint64(p.store.Buffered()) + 1)))
	return true
}

// truncateCrash is the shard journal's MemStore.CrashTruncate hook: a
// kill inside wal.Open's torn-tail truncation during the shard's own
// cold-start recovery.
func (p *shardKillPlan) truncateCrash(int) (error, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.fire() {
		return nil, false
	}
	p.hits[CrashMidCompaction]++
	p.kills++
	return errKilled, p.wl.Uint64n(2) == 0
}

// RunShardedCrashChaos runs the per-shard crash campaign: for each
// schedule (and each Device variant) it stands up a ShardedService over
// per-shard in-memory journal and checkpoint stores, drives a random
// cross-shard read/write/batch workload against a plain map oracle, and
// kills individual shard supervisors at crash-hook-selected points.
// After every kill it (1) asserts each healthy sibling still serves
// reads and writes — the one-shard-down-while-others-serve schedules —
// then (2) restarts the dead shard from its surviving stores with
// RestartShard (itself killable mid-recovery) and (3) resolves every
// in-flight mutation by read-back: old or new value, nothing else. The
// final sweep reads the whole global address space, closes the fleet,
// and scrubs every shard device.
func RunShardedCrashChaos(cfg ShardedCrashChaosConfig) ShardedCrashReport {
	cfg = cfg.withDefaults()
	rep := ShardedCrashReport{
		Schedules:  2 * cfg.Schedules,
		Shards:     cfg.Shards,
		ShardKills: make([]uint64, cfg.Shards),
	}
	for i := 0; i < cfg.Schedules; i++ {
		for _, v := range []Variant{Baseline, Fork} {
			runShardedCrashSchedule(&rep, cfg, uint64(i), v)
		}
	}
	return rep
}

// shardedCrashState is one schedule's live state.
type shardedCrashState struct {
	rep *ShardedCrashReport
	cfg ShardedCrashChaosConfig
	id  string

	svc    *ShardedService
	plans  []*shardKillPlan
	oracle map[uint64][]byte
	pend   []pendingWrite // in-flight writes awaiting read-back resolution
	// busy is the address a readBack is mid-retry on (excluded from
	// sibling probes: a probe write there would invalidate the oracle
	// value the read is about to be compared against).
	busy    uint64
	busySet bool
	dead    bool
}

func runShardedCrashSchedule(rep *ShardedCrashReport, cfg ShardedCrashChaosConfig, idx uint64, variant Variant) {
	seed := rng.SeedAt(cfg.Seed, 2*idx+uint64(variant))
	var budget atomic.Int64
	budget.Store(int64(cfg.MaxCrashes))
	plans := make([]*shardKillPlan, cfg.Shards)
	for i := range plans {
		// First kill lands anywhere in the schedule: per-shard hook
		// traffic is roughly the single-service rate over Shards.
		span := uint64(cfg.Ops)*3/(2*uint64(cfg.Shards)) + 8
		plans[i] = newShardKillPlan(rng.SeedAt(seed, 10+uint64(i)), &budget, span)
	}
	var fc *faults.Config
	retries := 0
	// Same schedule matrix as the single-service campaign: even idx gets
	// the Integrity decorator, idx ≡ 1 (mod 4) fault injection, and
	// idx ≡ 3 (mod 4) a plain medium — the only decoration the staged
	// pipeline engages over, so mid-pipeline kills fire on those.
	if cfg.Faults && idx%4 == 1 {
		p := 0.002 / 3
		fc = &faults.Config{
			Seed:           rng.SeedAt(seed, 2),
			PTransientRead: p, PTransientWrite: p, PDroppedWrite: p,
		}
		retries = -1 // every transient poisons: supervised healing runs under the kills
	}
	st := &shardedCrashState{
		rep:    rep,
		cfg:    cfg,
		id:     fmt.Sprintf("schedule %d/%v", idx, variant),
		plans:  plans,
		oracle: make(map[uint64][]byte),
	}
	scfg := ShardedServiceConfig{
		Shards: cfg.Shards,
		Service: ServiceConfig{
			Device: DeviceConfig{
				Blocks:    cfg.Blocks,
				BlockSize: cfg.BlockSize,
				QueueSize: 4,
				Seed:      rng.SeedAt(seed, 3),
				Variant:   variant,
				Integrity: idx%2 == 0,
				Retries:   retries,
				Faults:    fc,
				// Staged pipeline on plain-medium schedules (no-op under
				// the decorators), so shard kills land mid-window too;
				// odd schedules fan the serve stage across workers so
				// kills also land mid-serve (CrashMidServe).
				PipelineDepth: 2 + 2*int(idx%2),
				ServeWorkers:  2 * int(idx%2),
			},
			// Odd schedules also pipeline across dispatch windows, so
			// shard kills land on the committer/applier seam
			// (CrashMidWindowSeam) with the serve stage fanned out.
			CrossWindow:     idx%2 == 1,
			QueueDepth:      8,
			CheckpointEvery: 8,
			MaxRecoveries:   50,
			BackoffBase:     time.Nanosecond,
			BackoffMax:      time.Nanosecond,
		},
	}
	// Each shard gets its own journal (with the shard's torn-tail kill
	// hook), checkpoint store, and crash plan. The stores are created
	// once and captured by the PerShard hook, so RestartShard — which
	// re-runs NewService over r.cfgs[i] — reopens the SAME stores the
	// kill tore.
	wals := make([]*wal.MemStore, cfg.Shards)
	ckpts := make([]*MemCheckpointStore, cfg.Shards)
	// Dead shards must stay dead until the harness's own heal step:
	// sibling probes assert ErrShardDown and the oracle's resolution
	// order depends on restarts being driven deterministically.
	scfg.SelfHeal = SelfHealConfig{Disable: true}
	scfg.PerShard = func(_ RoutingPolicy, shard int, sc *ServiceConfig) {
		if wals[shard] == nil {
			wals[shard] = wal.NewMemStore()
			wals[shard].CrashTruncate = plans[shard].truncateCrash
			plans[shard].store = wals[shard]
			ckpts[shard] = NewMemCheckpointStore()
		}
		sc.WAL = wals[shard]
		sc.Checkpoints = ckpts[shard]
		sc.crashHook = plans[shard].hook
		sc.sleep = func(time.Duration) {}
	}
	defer func() {
		st.retireFleet()
		for i, p := range plans {
			rep.ShardKills[i] += p.kills
			rep.Crashes += p.kills
			for pt, n := range p.hits {
				rep.PointHits[pt] += n
			}
		}
	}()
	// Initial construction passes the same crash points as any cold
	// start; loop until a fleet survives its own birth (budget-bounded).
	for {
		svc, err := NewShardedService(scfg)
		if err == nil {
			st.svc = svc
			break
		}
		if !errors.Is(err, errKilled) {
			rep.violate("%s: open fleet: %v", st.id, err)
			return
		}
	}
	st.drive(rng.New(rng.SeedAt(seed, 4)), seed)
	if st.dead {
		return
	}
	// Final sweep: read-your-writes over the whole global address space.
	for addr := uint64(0); addr < cfg.Blocks && !st.dead; addr++ {
		st.rep.Ops++
		st.checkRead(addr)
	}
	if st.dead {
		return
	}
	// Clean shutdown: a kill landing inside a shard's final checkpoint
	// is a crash like any other — heal that shard and close again.
	for !st.dead {
		err := st.svc.Close()
		if err == nil {
			break
		}
		if !errors.Is(err, errKilled) {
			rep.violate("%s: close: %v", st.id, err)
			return
		}
		// Heal, not just recover: the sibling probes can leave their own
		// in-flight writes, settled before the next Close attempt.
		st.heal()
	}
	if st.dead {
		return
	}
	for i := 0; i < cfg.Shards; i++ {
		if err := st.svc.shard(i).dev.Scrub(); err != nil {
			rep.violate("%s: shard %d scrub after close: %v", st.id, i, err)
		}
	}
}

// drive runs the client workload: writes, reads, cross-shard batches,
// and concurrent bursts spanning shards.
func (st *shardedCrashState) drive(wl *rng.Source, seed uint64) {
	ctx := context.Background()
	var counter uint64
	for op := 0; op < st.cfg.Ops && !st.dead; op++ {
		st.rep.Ops++
		switch roll := wl.Float64(); {
		case roll < 0.40: // write
			addr := wl.Uint64n(st.cfg.Blocks)
			counter++
			data := chaosPayload(st.cfg.BlockSize, seed, counter)
			pend := []pendingWrite{{addr: addr, old: st.oracle[addr], new: data}}
			err := st.svc.Write(ctx, addr, data)
			if !st.settle(err, pend, "write") {
				continue
			}
			st.oracle[addr] = data
			st.rep.Acked++
		case roll < 0.60: // cross-shard batch: distinct addresses, mixed ops
			n := 2 + int(wl.Uint64n(4))
			ops := make([]BatchOp, 0, n)
			var pend []pendingWrite
			used := make(map[uint64]bool)
			for len(ops) < n {
				addr := wl.Uint64n(st.cfg.Blocks)
				if used[addr] {
					continue
				}
				used[addr] = true
				if wl.Float64() < 0.6 {
					counter++
					data := chaosPayload(st.cfg.BlockSize, seed, counter)
					ops = append(ops, BatchOp{Addr: addr, Write: true, Data: data})
					pend = append(pend, pendingWrite{addr: addr, old: st.oracle[addr], new: data})
				} else {
					ops = append(ops, BatchOp{Addr: addr})
				}
			}
			out, err := st.svc.Batch(ctx, ops)
			// A cross-shard batch commits per shard: on a mid-batch kill,
			// sub-batches on surviving shards may be durably applied, so
			// EVERY write in the batch settles as in-flight.
			if !st.settle(err, pend, "batch") {
				continue
			}
			for i, o := range ops {
				if o.Write {
					st.oracle[o.Addr] = o.Data
					st.rep.Acked++
				} else {
					st.compareRead(o.Addr, out[i])
				}
			}
		case roll < 0.70: // burst: concurrent writes racing across shards
			n := 2 + int(wl.Uint64n(3))
			pend := make([]pendingWrite, 0, n)
			used := make(map[uint64]bool)
			for len(pend) < n {
				addr := wl.Uint64n(st.cfg.Blocks)
				if used[addr] {
					continue
				}
				used[addr] = true
				counter++
				pend = append(pend, pendingWrite{
					addr: addr, old: st.oracle[addr],
					new: chaosPayload(st.cfg.BlockSize, seed, counter),
				})
			}
			st.rep.Ops += uint64(len(pend) - 1)
			errs := make([]error, len(pend))
			var wg sync.WaitGroup
			for i := range pend {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					errs[i] = st.svc.Write(ctx, pend[i].addr, pend[i].new)
				}(i)
			}
			wg.Wait()
			killed := false
			for i, err := range errs {
				switch {
				case err == nil:
					st.oracle[pend[i].addr] = pend[i].new
					st.rep.Acked++
				case errors.Is(err, errKilled):
					killed = true
					st.pend = append(st.pend, pend[i])
				default:
					st.rep.violate("%s: burst write failed with unexpected error: %v", st.id, err)
					st.dead = true
				}
			}
			if killed && !st.dead {
				st.heal()
			}
		default: // read
			st.checkRead(wl.Uint64n(st.cfg.Blocks))
		}
	}
}

// settle classifies an operation's error: nil means acknowledged,
// errKilled means a shard died with the mutations in flight — heal the
// fleet (sibling probes + restarts) and resolve each pending write.
// Reports whether the operation was acknowledged.
func (st *shardedCrashState) settle(err error, pend []pendingWrite, what string) bool {
	if err == nil {
		return true
	}
	if !errors.Is(err, errKilled) {
		st.rep.violate("%s: %s failed with unexpected error: %v", st.id, what, err)
		st.dead = true
		return false
	}
	st.pend = append(st.pend, pend...)
	st.heal()
	return false
}

// heal brings the fleet back to full strength and resolves every
// pending in-flight write. Kills landing during the healing itself
// (sibling probes, restarts, read-backs) loop back in; the fleet-wide
// kill budget bounds the loop.
func (st *shardedCrashState) heal() {
	if !st.recoverShards() {
		return
	}
	for len(st.pend) > 0 && !st.dead {
		// Peek, don't pop: the write stays visible to siblingProbe's
		// exclusion set while its own read-back may trigger more healing.
		p := st.pend[0]
		st.resolve(p)
		st.pend = st.pend[1:]
	}
}

// recoverShards restarts every killed shard — but FIRST probes each
// healthy sibling for a read and a write, certifying that a down shard
// degrades only its own residue class. Reports false if the schedule
// died.
func (st *shardedCrashState) recoverShards() bool {
	for !st.dead {
		downs := st.killedShards()
		if len(downs) == 0 {
			return true
		}
		st.rep.DownEvents++
		st.siblingProbe(downs)
		if st.dead {
			return false
		}
		for _, i := range downs {
			if !st.restartShard(i) {
				return false
			}
		}
	}
	return false
}

// killedShards lists shards whose supervisor exited from an injected
// crash.
func (st *shardedCrashState) killedShards() []int {
	var downs []int
	for i := 0; i < st.cfg.Shards; i++ {
		if st.svc.shard(i).Stats().State == stateKilled {
			downs = append(downs, i)
		}
	}
	return downs
}

// siblingProbe drives one read and one write through every healthy
// shard while the shards in downs are still dead. A probe op that is
// itself killed (another shard's plan firing) just queues its pending
// write; the caller's loop picks up the new corpse.
func (st *shardedCrashState) siblingProbe(downs []int) {
	down := make(map[int]bool, len(downs))
	for _, i := range downs {
		down[i] = true
	}
	// Probes must not touch addresses with unresolved in-flight writes:
	// their oracle entry is ambiguous until resolve() reads them back,
	// and a probe write would destroy the old-or-new evidence.
	pending := make(map[uint64]bool, len(st.pend))
	for _, p := range st.pend {
		pending[p.addr] = true
	}
	if st.busySet {
		pending[st.busy] = true
	}
	ctx := context.Background()
	for sh := 0; sh < st.cfg.Shards && !st.dead; sh++ {
		if down[sh] {
			// The dead shard itself must refuse, not hang or misroute.
			if _, err := st.svc.Read(ctx, uint64(sh)); !errors.Is(err, ErrShardDown) {
				st.rep.violate("%s: dead shard %d returned %v, want ErrShardDown", st.id, sh, err)
				st.dead = true
			}
			continue
		}
		if st.svc.shard(sh).Stats().State != StateHealthy {
			continue
		}
		// Probe an address owned by shard sh (addr ≡ sh mod Shards) that
		// has no unresolved in-flight write.
		addr, ok := uint64(0), false
		for a := uint64(sh); a < st.cfg.Blocks; a += uint64(st.cfg.Shards) {
			if !pending[a] {
				addr, ok = a, true
				break
			}
		}
		if !ok {
			continue
		}
		st.rep.Ops++
		got, err := st.svc.Read(ctx, addr)
		switch {
		case err == nil:
			st.compareRead(addr, got)
			st.rep.SiblingReads++
		case errors.Is(err, errKilled): // this sibling died too; next round
			continue
		default:
			st.rep.violate("%s: sibling read on shard %d failed while shard(s) %v down: %v", st.id, sh, downs, err)
			st.dead = true
			continue
		}
		st.rep.Ops++
		data := chaosPayload(st.cfg.BlockSize, uint64(sh)^0x51b11e6, st.rep.Crashes+st.rep.Ops)
		p := pendingWrite{addr: addr, old: st.oracle[addr], new: data}
		switch err := st.svc.Write(ctx, addr, data); {
		case err == nil:
			st.oracle[addr] = data
			st.rep.Acked++
			st.rep.SiblingWrites++
		case errors.Is(err, errKilled):
			st.pend = append(st.pend, p)
			pending[addr] = true
		default:
			st.rep.violate("%s: sibling write on shard %d failed while shard(s) %v down: %v", st.id, sh, downs, err)
			st.dead = true
		}
	}
}

// restartShard folds the dead incarnation's stats, then cold-starts the
// shard from its surviving stores. The restart's own recovery passes
// crash points; loop until an incarnation survives (budget-bounded).
func (st *shardedCrashState) restartShard(i int) bool {
	st.retireShard(i)
	for {
		err := st.svc.RestartShard(i)
		if err == nil {
			st.rep.Restarts++
			return true
		}
		if !errors.Is(err, errKilled) {
			st.rep.violate("%s: shard %d restart: %v", st.id, i, err)
			st.dead = true
			return false
		}
	}
}

// resolve settles one in-flight write by read-back: new value (durable
// and replayed — promote the oracle) or old value (torn away pre-ack),
// anything else corrupted data.
func (st *shardedCrashState) resolve(p pendingWrite) {
	got, ok := st.readBack(p.addr)
	if !ok {
		return
	}
	old := p.old
	if old == nil {
		old = make([]byte, st.cfg.BlockSize)
	}
	switch {
	case bytes.Equal(got, p.new):
		st.oracle[p.addr] = p.new
	case bytes.Equal(got, old):
		// Torn away pre-ack: legitimate for an unacknowledged write.
	default:
		st.rep.SilentCorruptions++
		st.rep.violate("%s: in-flight write at addr %d resolved to neither old nor new value", st.id, p.addr)
	}
}

// checkRead reads addr and holds the result to the oracle. A kill
// landing during the read heals the fleet, and the sibling probes may
// leave their own in-flight writes behind — settle them before the
// next client op can overwrite their evidence.
func (st *shardedCrashState) checkRead(addr uint64) {
	got, ok := st.readBack(addr)
	if ok {
		st.compareRead(addr, got)
	}
	if len(st.pend) > 0 && !st.dead {
		st.heal()
	}
}

// readBack reads addr, healing the fleet through any kill that lands
// during the read. ok=false means the schedule died.
func (st *shardedCrashState) readBack(addr uint64) ([]byte, bool) {
	st.busy, st.busySet = addr, true
	defer func() { st.busySet = false }()
	for !st.dead {
		got, err := st.svc.Read(context.Background(), addr)
		if err == nil {
			return got, true
		}
		if !errors.Is(err, errKilled) {
			st.rep.violate("%s: read %d failed with unexpected error: %v", st.id, addr, err)
			st.dead = true
			return nil, false
		}
		if !st.recoverShards() {
			return nil, false
		}
	}
	return nil, false
}

// compareRead holds a successful read to the oracle.
func (st *shardedCrashState) compareRead(addr uint64, got []byte) {
	want, acked := st.oracle[addr]
	if want == nil {
		want = make([]byte, st.cfg.BlockSize)
	}
	if !bytes.Equal(got, want) {
		st.rep.SilentCorruptions++
		if acked {
			st.rep.LostAcks++
			st.rep.violate("%s: acknowledged write at addr %d lost after shard recovery", st.id, addr)
		} else {
			st.rep.violate("%s: read at addr %d returned wrong data", st.id, addr)
		}
	}
}

// retireShard folds one dead incarnation's counters into the report
// (per-incarnation stats, folded exactly once: before its restart or by
// retireFleet at schedule end).
func (st *shardedCrashState) retireShard(i int) {
	s := st.svc.shard(i).Stats()
	st.rep.Recoveries += s.Recoveries
	st.rep.ReplayedOps += s.ReplayedOps
	st.rep.Checkpoints += s.Checkpoints
}

// retireFleet folds every live incarnation at schedule end.
func (st *shardedCrashState) retireFleet() {
	if st.svc == nil {
		return
	}
	for i := 0; i < st.cfg.Shards; i++ {
		st.retireShard(i)
	}
	st.svc = nil
}

// ---------------------------------------------------------------------
// Mid-migration crash campaign: kills at every ReshardCrashPoint of an
// online reshard, concurrent client traffic throughout, full rebuild
// over the surviving stores after every router death.
// ---------------------------------------------------------------------

// ReshardChaosConfig parameterizes RunReshardCrashChaos.
type ReshardChaosConfig struct {
	// Seed derives every schedule's workload, kill and store seeds.
	Seed uint64
	// Schedules is the number of independent schedules (default 100);
	// each runs once per Device variant (2×Schedules fleet lifetimes).
	Schedules int
	// Ops is the number of client operations driven concurrently with
	// the migration per schedule (default 96), prefill and final sweep
	// excluded.
	Ops int
	// Blocks / BlockSize size the GLOBAL address space (defaults 48/32).
	Blocks    uint64
	BlockSize int
	// Shards is the fleet's starting width (default 2); every schedule
	// splits to Shards+AddShards (default +2), and odd schedules then
	// merge back — so both directions run under kills.
	Shards    int
	AddShards int
	// ChunkBlocks is the migration chunk size (default 8).
	ChunkBlocks int
	// MaxRouterKills bounds router kills per schedule (default 3). Each
	// schedule focuses its first kill on one ReshardCrashPoint (rotating
	// by schedule index, so a full campaign covers all five); later
	// kills land at random consultations.
	MaxRouterKills int
	// MaxShardKills bounds ordinary shard-supervisor kills per schedule
	// (default 2): shard death composes with the migration, which must
	// stall and retry, never abort.
	MaxShardKills int
}

func (c ReshardChaosConfig) withDefaults() ReshardChaosConfig {
	if c.Schedules == 0 {
		c.Schedules = 100
	}
	if c.Ops == 0 {
		c.Ops = 96
	}
	if c.Blocks == 0 {
		c.Blocks = 48
	}
	if c.BlockSize == 0 {
		c.BlockSize = 32
	}
	if c.Shards == 0 {
		c.Shards = 2
	}
	if c.AddShards == 0 {
		c.AddShards = 2
	}
	if c.ChunkBlocks == 0 {
		c.ChunkBlocks = 8
	}
	if c.MaxRouterKills == 0 {
		c.MaxRouterKills = 3
	}
	if c.MaxShardKills == 0 {
		c.MaxShardKills = 2
	}
	return c
}

// ReshardChaosReport aggregates a RunReshardCrashChaos campaign.
type ReshardChaosReport struct {
	Schedules int    // fleet lifetimes executed (2× config.Schedules)
	Ops       uint64 // client operations attempted
	Acked     uint64 // acknowledged mutations the oracle holds the fleet to

	// Migrations counts committed cutovers; BlocksMoved/Chunks the copy
	// work (re-copied chunks after a rebuild included); Resumes the
	// Reshard calls that picked up a journaled in-progress migration.
	Migrations  uint64
	BlocksMoved uint64
	Chunks      uint64
	Resumes     uint64

	RouterKills uint64                   // router deaths injected
	PhaseHits   [numReshardPoints]uint64 // router kills per ReshardCrashPoint
	ShardKills  uint64                   // shard-supervisor deaths injected
	Rebuilds    uint64                   // full NewShardedService rebuilds after router death

	// MigReads/MigWrites count client operations acknowledged WHILE a
	// migration epoch was open — the no-full-stop-window property; both
	// stay comfortably nonzero.
	MigReads  uint64
	MigWrites uint64

	LostAcks          uint64
	SilentCorruptions uint64
	Violations        []string
}

// Ok reports whether the campaign finished with no violations.
func (r *ReshardChaosReport) Ok() bool { return len(r.Violations) == 0 }

func (r *ReshardChaosReport) violate(format string, args ...any) {
	if len(r.Violations) < 20 {
		r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
	}
}

// String renders the report for the CLI.
func (r *ReshardChaosReport) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "reshard-crash-chaos: %d fleet lifetimes, %d ops, %d acked mutations\n",
		r.Schedules, r.Ops, r.Acked)
	fmt.Fprintf(&b, "  migrations: %d committed cutovers, %d blocks copied in %d chunks, %d resumes\n",
		r.Migrations, r.BlocksMoved, r.Chunks, r.Resumes)
	fmt.Fprintf(&b, "  router kills: %d (", r.RouterKills)
	for p := 0; p < numReshardPoints; p++ {
		if p > 0 {
			fmt.Fprintf(&b, ", ")
		}
		fmt.Fprintf(&b, "%d %s", r.PhaseHits[p], ReshardCrashPoint(p))
	}
	fmt.Fprintf(&b, ")\n  shard kills: %d, fleet rebuilds: %d\n", r.ShardKills, r.Rebuilds)
	fmt.Fprintf(&b, "  during migration: %d reads + %d writes acknowledged (dual routing, no full-stop window)\n",
		r.MigReads, r.MigWrites)
	fmt.Fprintf(&b, "  lost acknowledged writes: %d, silent corruptions: %d\n",
		r.LostAcks, r.SilentCorruptions)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  VIOLATION: %s\n", v)
	}
	if r.Ok() {
		fmt.Fprintf(&b, "  ok: every acknowledged write survived every mid-migration crash\n")
	}
	return b.String()
}

// reshardKillPlan arms router kills at ReshardCrashPoint consultations.
// Each schedule FOCUSES on one point (rotating with the schedule index,
// so a campaign of ≥5·variants schedules kills at every phase): the
// first kill fires at a pseudo-random consultation of the focus point,
// later kills at random consultations of any point. The hook is called
// from the migrator goroutine and from NewShardedService (a rebuild's
// pending retirement), so it locks.
type reshardKillPlan struct {
	mu     sync.Mutex
	wl     *rng.Source
	store  *wal.MemStore
	budget int
	focus  ReshardCrashPoint
	nth    uint64
	seen   [numReshardPoints]uint64
	hits   [numReshardPoints]uint64
	kills  uint64
}

func newReshardKillPlan(seed uint64, store *wal.MemStore, cfg ReshardChaosConfig, idx uint64) *reshardKillPlan {
	p := &reshardKillPlan{wl: rng.New(seed), store: store, budget: cfg.MaxRouterKills}
	p.focus = ReshardCrashPoint(idx % uint64(numReshardPoints))
	switch p.focus {
	case ReshardKillMidStream:
		p.nth = 1 + p.wl.Uint64n(cfg.Blocks)
	case ReshardKillAdvance:
		chunks := (cfg.Blocks + uint64(cfg.ChunkBlocks) - 1) / uint64(cfg.ChunkBlocks)
		p.nth = 1 + p.wl.Uint64n(chunks)
	default:
		p.nth = 1
	}
	return p
}

// hook kills the router and tears the router journal's unsynced buffer
// at a random byte boundary — the appended-but-sync-racing-the-crash
// outcome every kill point documents.
func (p *reshardKillPlan) hook(pt ReshardCrashPoint) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.budget <= 0 {
		return false
	}
	p.seen[pt]++
	fire := pt == p.focus && p.seen[pt] == p.nth
	if !fire && p.kills > 0 && p.wl.Float64() < 0.03 {
		fire = true
	}
	if !fire {
		return false
	}
	p.budget--
	p.hits[pt]++
	p.kills++
	p.store.Crash(int(p.wl.Uint64n(uint64(p.store.Buffered()) + 1)))
	return true
}

// reshardStoreKey identifies one shard generation's stores.
type reshardStoreKey struct {
	version uint64
	shard   int
}

// reshardShardStores owns the durable per-(policy version, shard)
// stores and shard kill plans of one schedule, created lazily by the
// PerShard hook: a fleet rebuilt mid-migration must find BOTH
// generations' journals again, keyed exactly as the hook contract says.
// PerShard runs from the constructor, the migrator's restarts, and the
// harness's heal passes, so it locks.
type reshardShardStores struct {
	mu    sync.Mutex
	wals  map[reshardStoreKey]*wal.MemStore
	ckpts map[reshardStoreKey]*MemCheckpointStore
	plans map[reshardStoreKey]*shardKillPlan
}

func (s *reshardShardStores) install(seed uint64, budget *atomic.Int64, span uint64) func(RoutingPolicy, int, *ServiceConfig) {
	return func(p RoutingPolicy, shard int, sc *ServiceConfig) {
		s.mu.Lock()
		defer s.mu.Unlock()
		k := reshardStoreKey{p.Version, shard}
		if s.wals[k] == nil {
			plan := newShardKillPlan(rng.SeedAt(seed, 100+31*p.Version+uint64(shard)), budget, span)
			w := wal.NewMemStore()
			w.CrashTruncate = plan.truncateCrash
			plan.store = w
			s.wals[k] = w
			s.ckpts[k] = NewMemCheckpointStore()
			s.plans[k] = plan
		}
		sc.WAL = s.wals[k]
		sc.Checkpoints = s.ckpts[k]
		sc.crashHook = s.plans[k].hook
		sc.sleep = func(time.Duration) {}
	}
}

// RunReshardCrashChaos runs the mid-migration crash campaign: for each
// schedule (and each Device variant) it stands up a fleet over durable
// per-(version, shard) stores and a durable router journal, prefills
// half the address space, then drives an online split to
// Shards+AddShards (odd schedules merge back afterwards) CONCURRENTLY
// with a random read/write/batch client workload held to a plain map
// oracle. The router is killed at every ReshardCrashPoint across the
// campaign; after each kill the whole fleet is rebuilt from the
// surviving stores — NewShardedService replays the torn router journal
// into the exact dual-routing state — and the migration resumed. Shard
// supervisors are killed too; the migration must stall and retry, the
// front door must keep serving the rest of the space. The campaign
// asserts 0 lost acked writes, 0 silent corruptions, and that reads
// AND writes were acknowledged while migration epochs were open.
func RunReshardCrashChaos(cfg ReshardChaosConfig) ReshardChaosReport {
	cfg = cfg.withDefaults()
	rep := ReshardChaosReport{Schedules: 2 * cfg.Schedules}
	for i := 0; i < cfg.Schedules; i++ {
		for _, v := range []Variant{Baseline, Fork} {
			runReshardSchedule(&rep, cfg, uint64(i), v)
		}
	}
	return rep
}

// reshardChaosState is one schedule's live state.
type reshardChaosState struct {
	rep *ReshardChaosReport
	cfg ReshardChaosConfig
	id  string

	scfg   ShardedServiceConfig
	svc    *ShardedService
	rplan  *reshardKillPlan
	stores *reshardShardStores
	oracle map[uint64][]byte
	pend   []pendingWrite

	split   int  // the split target width (Shards+AddShards)
	target  int  // width the in-flight/next migration drives toward
	merge   bool // queue a second migration back to the seed width
	running bool // a Reshard call is in flight on svc
	migErr  chan error
	dead    bool
}

func runReshardSchedule(rep *ReshardChaosReport, cfg ReshardChaosConfig, idx uint64, variant Variant) {
	seed := rng.SeedAt(cfg.Seed, 2*idx+uint64(variant))
	rstore := wal.NewMemStore()
	rplan := newReshardKillPlan(rng.SeedAt(seed, 20), rstore, cfg, idx)
	var shardBudget atomic.Int64
	shardBudget.Store(int64(cfg.MaxShardKills))
	stores := &reshardShardStores{
		wals:  make(map[reshardStoreKey]*wal.MemStore),
		ckpts: make(map[reshardStoreKey]*MemCheckpointStore),
		plans: make(map[reshardStoreKey]*shardKillPlan),
	}
	st := &reshardChaosState{
		rep:    rep,
		cfg:    cfg,
		id:     fmt.Sprintf("schedule %d/%v", idx, variant),
		rplan:  rplan,
		stores: stores,
		oracle: make(map[uint64][]byte),
		split:  cfg.Shards + cfg.AddShards,
		target: cfg.Shards + cfg.AddShards,
		merge:  idx%2 == 1,
		migErr: make(chan error, 1),
	}
	// Span tuned so shard kills land anywhere across the schedule's
	// per-shard hook traffic (client ops + migration copies).
	span := uint64(cfg.Ops)*3/(2*uint64(st.split)) + 8
	st.scfg = ShardedServiceConfig{
		Shards: cfg.Shards,
		Service: ServiceConfig{
			Device: DeviceConfig{
				Blocks:    cfg.Blocks,
				BlockSize: cfg.BlockSize,
				QueueSize: 4,
				Seed:      rng.SeedAt(seed, 3),
				Variant:   variant,
				Integrity: idx%2 == 0,
			},
			QueueDepth:      8,
			CheckpointEvery: 8,
			MaxRecoveries:   50,
			BackoffBase:     time.Nanosecond,
			BackoffMax:      time.Nanosecond,
		},
		RouterWAL: rstore,
		// The harness heals deterministically (healDownShards below);
		// the background loop would race the oracle's resolution order.
		SelfHeal:    SelfHealConfig{Disable: true},
		reshardHook: rplan.hook,
		sleep:       func(time.Duration) {},
	}
	st.scfg.PerShard = stores.install(seed, &shardBudget, span)
	defer st.finish()
	if !st.build() {
		return
	}
	// Prefill half the space with acked writes: the migration must carry
	// real data, and the untouched half pins zero-block routing.
	wl := rng.New(rng.SeedAt(seed, 4))
	var counter uint64
	ctx := context.Background()
	for addr := uint64(0); addr < cfg.Blocks && !st.dead; addr += 2 {
		st.rep.Ops++
		counter++
		data := chaosPayload(cfg.BlockSize, seed, counter)
		p := pendingWrite{addr: addr, old: st.oracle[addr], new: data}
		if st.settle(st.svc.Write(ctx, addr, data), []pendingWrite{p}, "prefill write") {
			st.oracle[addr] = data
			st.rep.Acked++
		}
	}
	if st.dead {
		return
	}
	st.startMig()
	st.drive(wl, seed, &counter)
	// Join the migration(s): a router kill mid-join rebuilds and
	// relaunches; the kill budget bounds the loop.
	for !st.dead {
		if st.running {
			st.migDone(<-st.migErr)
			continue
		}
		if st.merge && st.svc.Shards() == st.split {
			st.merge = false
			st.target = st.cfg.Shards
			st.startMig()
			continue
		}
		break
	}
	if st.dead {
		return
	}
	st.resolvePend()
	if st.dead {
		return
	}
	if got := st.svc.Shards(); got != st.target || st.svc.Migrating() {
		st.rep.violate("%s: fleet ended at %d shards (migrating=%v), want %d settled",
			st.id, got, st.svc.Migrating(), st.target)
		st.dead = true
		return
	}
	// Final sweep: read-your-writes over the whole global address space
	// at the post-migration width.
	for addr := uint64(0); addr < cfg.Blocks && !st.dead; addr++ {
		st.rep.Ops++
		st.checkRead(addr)
	}
	if st.dead {
		return
	}
	if err := st.svc.Close(); err != nil {
		st.rep.violate("%s: close: %v", st.id, err)
		return
	}
	for i := 0; i < st.svc.Shards(); i++ {
		if err := st.svc.shard(i).dev.Scrub(); err != nil {
			st.rep.violate("%s: shard %d scrub after close: %v", st.id, i, err)
		}
	}
}

// build stands the fleet up over the schedule's stores, retrying
// through crash-injected cold starts (kill budgets bound the loop).
func (st *reshardChaosState) build() bool {
	for {
		svc, err := NewShardedService(st.scfg)
		if err == nil {
			st.svc = svc
			return true
		}
		if !errors.Is(err, errKilled) {
			st.rep.violate("%s: open fleet: %v", st.id, err)
			st.dead = true
			return false
		}
	}
}

// startMig launches Reshard toward st.target on the migrator goroutine.
func (st *reshardChaosState) startMig() {
	st.running = true
	go func(svc *ShardedService, target, chunk int) {
		st.migErr <- svc.Reshard(context.Background(), ReshardConfig{NewShards: target, ChunkBlocks: chunk})
	}(st.svc, st.target, st.cfg.ChunkBlocks)
}

// migDone classifies a finished Reshard call.
func (st *reshardChaosState) migDone(err error) {
	st.running = false
	switch {
	case err == nil:
	case errors.Is(err, errKilled):
		st.routerRebuild()
	default:
		st.rep.violate("%s: reshard failed with unexpected error: %v", st.id, err)
		st.dead = true
	}
}

// joinMig receives the migrator's exit after a client op saw the router
// die; bare errKilled at admission implies a Reshard call is unwinding.
func (st *reshardChaosState) joinMig() {
	if !st.running {
		st.rep.violate("%s: router killed with no migration running", st.id)
		st.dead = true
		return
	}
	st.migDone(<-st.migErr)
}

// routerRebuild is the whole-process-death recovery: fold the dead
// instance's migration counters, close it, rebuild over the surviving
// stores (the torn router journal replays into the exact dual-routing
// state), and relaunch the migration if the journal says one is open or
// the fleet is not yet at the target width.
func (st *reshardChaosState) routerRebuild() {
	st.foldMig()
	st.svc.Close() // errors are moot: acked writes are synced by contract
	if !st.build() {
		return
	}
	st.rep.Rebuilds++
	if st.svc.Migrating() || st.svc.Shards() != st.target {
		st.startMig()
	}
}

// foldMig folds one fleet instance's migration counters into the report
// (called exactly once per instance: at rebuild or schedule end).
func (st *reshardChaosState) foldMig() {
	m := st.svc.Stats().Migration
	st.rep.Migrations += m.Completed
	st.rep.BlocksMoved += m.BlocksMoved
	st.rep.Chunks += m.Chunks
	st.rep.Resumes += m.Resumes
}

// finish settles the schedule's accounting: stop a still-running
// migrator (violation paths), fold the final instance and every kill
// plan.
func (st *reshardChaosState) finish() {
	if st.running && st.svc != nil {
		st.svc.Close()
		<-st.migErr
		st.running = false
	}
	if st.svc != nil {
		st.foldMig()
	}
	st.rep.RouterKills += st.rplan.kills
	for pt, n := range st.rplan.hits {
		st.rep.PhaseHits[pt] += n
	}
	st.stores.mu.Lock()
	for _, p := range st.stores.plans {
		st.rep.ShardKills += p.kills
	}
	st.stores.mu.Unlock()
}

// drive runs the client workload concurrently with the migration.
func (st *reshardChaosState) drive(wl *rng.Source, seed uint64, counter *uint64) {
	ctx := context.Background()
	for op := 0; op < st.cfg.Ops && !st.dead; op++ {
		if st.running {
			select {
			case err := <-st.migErr:
				st.migDone(err)
			default:
			}
		} else if st.merge && st.svc.Shards() == st.split {
			// First migration settled mid-drive: merge back under the
			// remaining traffic.
			st.merge = false
			st.target = st.cfg.Shards
			st.startMig()
		}
		if st.dead {
			return
		}
		st.rep.Ops++
		migOpen := st.svc.Migrating()
		switch roll := wl.Float64(); {
		case roll < 0.45: // write
			addr := wl.Uint64n(st.cfg.Blocks)
			*counter++
			data := chaosPayload(st.cfg.BlockSize, seed, *counter)
			p := pendingWrite{addr: addr, old: st.oracle[addr], new: data}
			if st.settle(st.svc.Write(ctx, addr, data), []pendingWrite{p}, "write") {
				st.oracle[addr] = data
				st.rep.Acked++
				if migOpen {
					st.rep.MigWrites++
				}
			}
		case roll < 0.65: // cross-shard batch, admitted under one epoch
			n := 2 + int(wl.Uint64n(4))
			ops := make([]BatchOp, 0, n)
			var pend []pendingWrite
			used := make(map[uint64]bool)
			for len(ops) < n {
				addr := wl.Uint64n(st.cfg.Blocks)
				if used[addr] {
					continue
				}
				used[addr] = true
				if wl.Float64() < 0.6 {
					*counter++
					data := chaosPayload(st.cfg.BlockSize, seed, *counter)
					ops = append(ops, BatchOp{Addr: addr, Write: true, Data: data})
					pend = append(pend, pendingWrite{addr: addr, old: st.oracle[addr], new: data})
				} else {
					ops = append(ops, BatchOp{Addr: addr})
				}
			}
			out, err := st.svc.Batch(ctx, ops)
			// Commits per shard: on failure every write settles in-flight.
			if !st.settle(err, pend, "batch") {
				continue
			}
			for i, o := range ops {
				if o.Write {
					st.oracle[o.Addr] = o.Data
					st.rep.Acked++
					if migOpen {
						st.rep.MigWrites++
					}
				} else {
					st.compareRead(o.Addr, out[i])
					if migOpen {
						st.rep.MigReads++
					}
				}
			}
		default: // read
			addr := wl.Uint64n(st.cfg.Blocks)
			got, ok := st.readBack(addr)
			if ok {
				st.compareRead(addr, got)
				if migOpen {
					st.rep.MigReads++
				}
			}
		}
	}
}

// settle classifies an operation's error: nil means acknowledged;
// ErrShardDown means a shard died under the op (heal it, resolve the
// in-flight writes); bare errKilled means the router died at a reshard
// point (rebuild the fleet, resume the migration, resolve). Reports
// whether the op was acknowledged.
func (st *reshardChaosState) settle(err error, pend []pendingWrite, what string) bool {
	switch {
	case err == nil:
		return true
	case errors.Is(err, ErrShardDown):
		st.pend = append(st.pend, pend...)
		st.healShards()
	case errors.Is(err, errKilled):
		st.pend = append(st.pend, pend...)
		st.joinMig()
	default:
		st.rep.violate("%s: %s failed with unexpected error: %v", st.id, what, err)
		st.dead = true
		return false
	}
	st.resolvePend()
	return false
}

// healShards cold-starts every down shard across both generations
// (synchronous harness stand-in for the self-heal loop); restarts that
// are themselves crash-injected retry, bounded by the kill budget.
func (st *reshardChaosState) healShards() {
	for !st.dead && st.svc.Stats().Down > 0 {
		if _, err := st.svc.healDownShards(); err != nil {
			st.rep.violate("%s: heal down shards: %v", st.id, err)
			st.dead = true
		}
	}
}

// resolvePend settles every in-flight write by read-back: new value
// (durable — promote the oracle) or old value (torn away pre-ack),
// anything else a silent corruption.
func (st *reshardChaosState) resolvePend() {
	for len(st.pend) > 0 && !st.dead {
		p := st.pend[0]
		got, ok := st.readBack(p.addr)
		if !ok {
			return
		}
		old := p.old
		if old == nil {
			old = make([]byte, st.cfg.BlockSize)
		}
		switch {
		case bytes.Equal(got, p.new):
			st.oracle[p.addr] = p.new
		case bytes.Equal(got, old):
			// Torn away pre-ack: legitimate for an unacknowledged write.
		default:
			st.rep.SilentCorruptions++
			st.rep.violate("%s: in-flight write at addr %d resolved to neither old nor new value", st.id, p.addr)
		}
		st.pend = st.pend[1:]
	}
}

// readBack reads addr, healing shard deaths and rebuilding through
// router deaths. ok=false means the schedule died.
func (st *reshardChaosState) readBack(addr uint64) ([]byte, bool) {
	ctx := context.Background()
	for !st.dead {
		got, err := st.svc.Read(ctx, addr)
		switch {
		case err == nil:
			return got, true
		case errors.Is(err, ErrShardDown):
			st.healShards()
		case errors.Is(err, errKilled):
			st.joinMig()
		default:
			st.rep.violate("%s: read %d failed with unexpected error: %v", st.id, addr, err)
			st.dead = true
		}
	}
	return nil, false
}

// checkRead reads addr and holds the result to the oracle, settling any
// in-flight writes the healing left behind.
func (st *reshardChaosState) checkRead(addr uint64) {
	got, ok := st.readBack(addr)
	if ok {
		st.compareRead(addr, got)
	}
	if len(st.pend) > 0 && !st.dead {
		st.resolvePend()
	}
}

// compareRead holds a successful read to the oracle.
func (st *reshardChaosState) compareRead(addr uint64, got []byte) {
	want, acked := st.oracle[addr]
	if want == nil {
		want = make([]byte, st.cfg.BlockSize)
	}
	if !bytes.Equal(got, want) {
		st.rep.SilentCorruptions++
		if acked {
			st.rep.LostAcks++
			st.rep.violate("%s: acknowledged write at addr %d lost across migration", st.id, addr)
		} else {
			st.rep.violate("%s: read at addr %d returned wrong data", st.id, addr)
		}
	}
}
