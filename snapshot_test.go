package forkoram

import (
	"bytes"
	"errors"
	"testing"

	"forkoram/internal/storage"
)

func snapFixture(t *testing.T, variant Variant, integrity bool) (*Device, map[uint64][]byte) {
	t.Helper()
	d, err := NewDevice(DeviceConfig{
		Blocks: 48, BlockSize: 16, Seed: 17, Variant: variant, Integrity: integrity,
	})
	if err != nil {
		t.Fatal(err)
	}
	oracle := make(map[uint64][]byte)
	for i := 0; i < 150; i++ {
		addr := uint64(i*5) % 48
		data := payload(16, byte(i+1))
		if err := d.Write(addr, data); err != nil {
			t.Fatal(err)
		}
		oracle[addr] = data
	}
	return d, oracle
}

func verifyOracle(t *testing.T, d *Device, oracle map[uint64][]byte, what string) {
	t.Helper()
	for addr := uint64(0); addr < d.Blocks(); addr++ {
		want, ok := oracle[addr]
		if !ok {
			want = make([]byte, d.BlockSize())
		}
		got, err := d.Read(addr)
		if err != nil {
			t.Fatalf("%s: read %d: %v", what, addr, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: read %d: got %x want %x", what, addr, got[:4], want[:4])
		}
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	for _, variant := range []Variant{Baseline, Fork} {
		for _, integrity := range []bool{false, true} {
			d, oracle := snapFixture(t, variant, integrity)
			snap, err := d.Snapshot()
			if err != nil {
				t.Fatalf("variant %d integrity %v: snapshot: %v", variant, integrity, err)
			}
			// Crash: the old device handle is abandoned; only the medium
			// and the snapshot survive.
			nd, err := RestoreDevice(snap)
			if err != nil {
				t.Fatalf("variant %d integrity %v: restore: %v", variant, integrity, err)
			}
			if err := nd.Scrub(); err != nil {
				t.Fatalf("variant %d integrity %v: scrub after restore: %v", variant, integrity, err)
			}
			verifyOracle(t, nd, oracle, "after restore")
			// The restored device keeps working: more writes, then audit.
			for i := 0; i < 60; i++ {
				addr := uint64(i*11) % 48
				data := payload(16, byte(0x80+i))
				if err := nd.Write(addr, data); err != nil {
					t.Fatalf("write after restore: %v", err)
				}
				oracle[addr] = data
			}
			verifyOracle(t, nd, oracle, "after post-restore writes")
			if err := nd.Scrub(); err != nil {
				t.Fatalf("variant %d integrity %v: final scrub: %v", variant, integrity, err)
			}
			// Counters carried over.
			if nd.Stats().Writes < 150 {
				t.Fatalf("restored device lost its counters: %+v", nd.Stats())
			}
		}
	}
}

func TestSnapshotMarshalRoundTrip(t *testing.T) {
	d, oracle := snapFixture(t, Fork, true)
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	buf, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := UnmarshalSnapshot(buf, d)
	if err != nil {
		t.Fatal(err)
	}
	buf2, err := decoded.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, buf2) {
		t.Fatal("marshal → unmarshal → marshal is not the identity")
	}
	nd, err := RestoreDevice(decoded)
	if err != nil {
		t.Fatalf("restore from decoded snapshot: %v", err)
	}
	verifyOracle(t, nd, oracle, "after decoded restore")
	if err := nd.Scrub(); err != nil {
		t.Fatalf("scrub after decoded restore: %v", err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	d, _ := snapFixture(t, Baseline, false)
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	buf, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalSnapshot(nil, d); err == nil {
		t.Fatal("accepted empty input")
	}
	if _, err := UnmarshalSnapshot(buf[:len(buf)/2], d); err == nil {
		t.Fatal("accepted truncated snapshot")
	}
	bad := append([]byte(nil), buf...)
	bad[0] ^= 0xFF
	if _, err := UnmarshalSnapshot(bad, d); err == nil {
		t.Fatal("accepted bad magic")
	}
	// Geometry mismatch: a device with different Blocks.
	other, err := NewDevice(DeviceConfig{Blocks: 200, BlockSize: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalSnapshot(buf, other); err == nil {
		t.Fatal("accepted snapshot against mismatched device")
	}
}

// TestRestoreRejectsDivergedMedium: with integrity, restoring a snapshot
// over a medium that advanced past it (the crashed client kept writing)
// must be rejected with a typed corruption error — resuming would fork
// history silently.
func TestRestoreRejectsDivergedMedium(t *testing.T) {
	d, _ := snapFixture(t, Fork, true)
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := d.Write(uint64(i), payload(16, 0xEE)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := RestoreDevice(snap); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("restore over diverged medium: got %v, want wrapped ErrCorrupt", err)
	}
}

// TestRestoreRejectsTamperedMedium: same, for out-of-band corruption.
func TestRestoreRejectsTamperedMedium(t *testing.T) {
	d, _ := snapFixture(t, Baseline, true)
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	tamperSomeBucket(t, d)
	if _, err := RestoreDevice(snap); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("restore over tampered medium: got %v, want wrapped ErrCorrupt", err)
	}
}

func tamperSomeBucket(t *testing.T, d *Device) {
	t.Helper()
	for n := uint64(0); n < d.tr.Nodes(); n++ {
		if ct := d.store.Ciphertext(n); len(ct) > 0 {
			ct[len(ct)/3] ^= 0x40
			return
		}
	}
	t.Fatal("no written bucket to tamper with")
}

func TestScrubDetectsLatentCorruption(t *testing.T) {
	d, _ := snapFixture(t, Fork, true)
	if err := d.Scrub(); err != nil {
		t.Fatalf("clean scrub: %v", err)
	}
	tamperSomeBucket(t, d)
	err := d.Scrub()
	if !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("scrub over tampered medium: got %v, want wrapped ErrCorrupt", err)
	}
	var ie *storage.IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("scrub error carries no IntegrityError: %v", err)
	}
}

// TestScrubMidStream: Scrub must hold between any two synchronous
// operations, including while the Fork handle is open (merged buckets
// legitimately hold stale copies then).
func TestScrubMidStream(t *testing.T) {
	d, err := NewDevice(DeviceConfig{Blocks: 32, BlockSize: 16, Seed: 23, Variant: Fork, Integrity: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		if err := d.Write(uint64(i)%32, payload(16, byte(i))); err != nil {
			t.Fatal(err)
		}
		if i%10 == 9 {
			if err := d.Scrub(); err != nil {
				t.Fatalf("mid-stream scrub after op %d: %v", i, err)
			}
		}
	}
}

func TestSnapshotLeavesLiveDeviceConsistent(t *testing.T) {
	for _, variant := range []Variant{Baseline, Fork} {
		d, oracle := snapFixture(t, variant, true)
		if _, err := d.Snapshot(); err != nil {
			t.Fatal(err)
		}
		// The snapshotted (still live) device keeps serving correctly.
		for i := 0; i < 60; i++ {
			addr := uint64(i * 3 % 48)
			data := payload(16, byte(0x40+i))
			if err := d.Write(addr, data); err != nil {
				t.Fatalf("variant %d: write after snapshot: %v", variant, err)
			}
			oracle[addr] = data
		}
		verifyOracle(t, d, oracle, "live device after snapshot")
		if err := d.Scrub(); err != nil {
			t.Fatalf("variant %d: scrub: %v", variant, err)
		}
	}
}
