package forkoram

import (
	"errors"
	"sync"
	"testing"
)

// TestDeviceConcurrentAccessGuard exercises the busy-flag misuse guard:
// an operation entering while another is in flight gets the typed
// ErrConcurrentAccess instead of corrupting controller state.
func TestDeviceConcurrentAccessGuard(t *testing.T) {
	d, err := NewDevice(DeviceConfig{Blocks: 32, BlockSize: 16, QueueSize: 4, Seed: 3, Variant: Fork})
	if err != nil {
		t.Fatal(err)
	}
	// White-box: with the flag held, every public operation refuses.
	if err := d.enter(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Read(0); !errors.Is(err, ErrConcurrentAccess) {
		t.Fatalf("read under held flag: %v", err)
	}
	if err := d.Write(0, make([]byte, 16)); !errors.Is(err, ErrConcurrentAccess) {
		t.Fatalf("write under held flag: %v", err)
	}
	if _, err := d.Batch([]BatchOp{{Addr: 0}}); !errors.Is(err, ErrConcurrentAccess) {
		t.Fatalf("batch under held flag: %v", err)
	}
	if _, err := d.Snapshot(); !errors.Is(err, ErrConcurrentAccess) {
		t.Fatalf("snapshot under held flag: %v", err)
	}
	if err := d.Scrub(); !errors.Is(err, ErrConcurrentAccess) {
		t.Fatalf("scrub under held flag: %v", err)
	}
	d.leave()
	if _, err := d.Read(0); err != nil {
		t.Fatalf("read after release: %v", err)
	}

	// Black-box: goroutines racing a raw Device either succeed or get the
	// typed rejection — never a panic or a corrupted result. (The guard is
	// a misuse detector, not a synchronization primitive; Service is the
	// supported concurrent front door.)
	var wg sync.WaitGroup
	var mu sync.Mutex
	errs := make(map[error]int)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, err := d.Read(uint64(g))
				if err != nil && !errors.Is(err, ErrConcurrentAccess) {
					mu.Lock()
					errs[err]++
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
	if len(errs) != 0 {
		t.Fatalf("unexpected errors under concurrent misuse: %v", errs)
	}
	if _, err := d.Read(0); err != nil {
		t.Fatalf("device unusable after concurrent misuse: %v", err)
	}
}
