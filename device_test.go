package forkoram

import (
	"bytes"
	"testing"

	"forkoram/internal/rng"
)

func newDevice(t *testing.T, v Variant) *Device {
	t.Helper()
	d, err := NewDevice(DeviceConfig{Blocks: 1024, BlockSize: 32, Variant: v, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func pay32(b byte) []byte {
	d := make([]byte, 32)
	for i := range d {
		d[i] = b
	}
	return d
}

func TestDeviceConfigValidation(t *testing.T) {
	if _, err := NewDevice(DeviceConfig{}); err == nil {
		t.Fatal("zero blocks accepted")
	}
	if _, err := NewDevice(DeviceConfig{Blocks: 8, Key: []byte("short")}); err == nil {
		t.Fatal("short key accepted")
	}
	if _, err := NewDevice(DeviceConfig{Blocks: 8, Variant: Variant(9)}); err == nil {
		t.Fatal("bogus variant accepted")
	}
}

func TestDeviceReadUnwrittenIsZero(t *testing.T) {
	for _, v := range []Variant{Baseline, Fork} {
		d := newDevice(t, v)
		got, err := d.Read(3)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, make([]byte, 32)) {
			t.Fatalf("variant %d: unwritten block not zero", v)
		}
	}
}

func TestDeviceReadYourWrites(t *testing.T) {
	for _, v := range []Variant{Baseline, Fork} {
		d := newDevice(t, v)
		r := rng.New(11)
		shadow := map[uint64][]byte{}
		for i := 0; i < 600; i++ {
			addr := r.Uint64n(200)
			if r.Float64() < 0.5 {
				p := pay32(byte(r.Uint64()))
				if err := d.Write(addr, p); err != nil {
					t.Fatal(err)
				}
				shadow[addr] = p
			} else {
				got, err := d.Read(addr)
				if err != nil {
					t.Fatal(err)
				}
				want := shadow[addr]
				if want == nil {
					want = make([]byte, 32)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("variant %d step %d addr %d mismatch", v, i, addr)
				}
			}
		}
	}
}

func TestDeviceBoundsAndSizes(t *testing.T) {
	d := newDevice(t, Fork)
	if _, err := d.Read(1024); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if err := d.Write(0, []byte{1}); err == nil {
		t.Fatal("short write accepted")
	}
}

func TestDeviceBatchSchedulingCorrect(t *testing.T) {
	d := newDevice(t, Fork)
	var ops []BatchOp
	for i := uint64(0); i < 50; i++ {
		ops = append(ops, BatchOp{Addr: i, Write: true, Data: pay32(byte(i))})
	}
	for i := uint64(0); i < 50; i++ {
		ops = append(ops, BatchOp{Addr: i})
	}
	res, err := d.Batch(ops)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if res[i] != nil {
			t.Fatalf("write op %d returned data", i)
		}
		got := res[50+i]
		if !bytes.Equal(got, pay32(byte(i))) {
			t.Fatalf("batch read %d: got %x", i, got[:4])
		}
	}
}

func TestDeviceBatchSameAddressOrder(t *testing.T) {
	d := newDevice(t, Fork)
	ops := []BatchOp{
		{Addr: 5, Write: true, Data: pay32(1)},
		{Addr: 5, Write: true, Data: pay32(2)},
		{Addr: 5},
		{Addr: 5, Write: true, Data: pay32(3)},
	}
	res, err := d.Batch(ops)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res[2], pay32(2)) {
		t.Fatalf("read between writes saw %x, want 2s", res[2][:4])
	}
	got, err := d.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pay32(3)) {
		t.Fatalf("final value %x, want 3s", got[:4])
	}
}

func TestDeviceBaselineBatchFallback(t *testing.T) {
	d := newDevice(t, Baseline)
	res, err := d.Batch([]BatchOp{
		{Addr: 1, Write: true, Data: pay32(9)},
		{Addr: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res[1], pay32(9)) {
		t.Fatal("baseline batch wrong result")
	}
}

func TestDeviceStats(t *testing.T) {
	d := newDevice(t, Fork)
	for i := uint64(0); i < 20; i++ {
		if err := d.Write(i, pay32(1)); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.Writes != 20 || st.Reads != 0 {
		t.Fatalf("op counts %+v", st)
	}
	if st.RealAccesses == 0 || st.BucketWrites == 0 {
		t.Fatalf("no tree activity recorded: %+v", st)
	}
	if st.PathLength == 0 {
		t.Fatal("path length missing")
	}
}

func TestDeviceForkCheaperThanBaselinePerOp(t *testing.T) {
	// The headline property at the device level: batch workloads move
	// fewer buckets per operation under Fork than under Baseline.
	run := func(v Variant) float64 {
		d := newDevice(t, v)
		var ops []BatchOp
		r := rng.New(3)
		for i := 0; i < 300; i++ {
			ops = append(ops, BatchOp{Addr: r.Uint64n(900), Write: true, Data: pay32(byte(i))})
		}
		if _, err := d.Batch(ops); err != nil {
			t.Fatal(err)
		}
		st := d.Stats()
		return float64(st.BucketReads+st.BucketWrites) / 300
	}
	base := run(Baseline)
	fork := run(Fork)
	if fork >= base {
		t.Fatalf("fork buckets/op %.1f >= baseline %.1f", fork, base)
	}
}

func TestSimulationFacade(t *testing.T) {
	cfg := DefaultSimConfig(SchemeForkPath)
	cfg.DataBlocks = 1 << 16
	cfg.OnChipEntries = 1 << 9
	cfg.RequestsPerCore = 500
	res, err := RunSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAccesses() == 0 {
		t.Fatal("no accesses")
	}
	if len(Experiments()) < 15 {
		t.Fatalf("experiments list too short: %v", Experiments())
	}
	if len(Mixes()) != 10 {
		t.Fatalf("mixes %v", Mixes())
	}
	if len(Benchmarks("HG")) == 0 || len(Benchmarks("PARSEC")) == 0 {
		t.Fatal("benchmark groups empty")
	}
}

func TestRunExperimentFacade(t *testing.T) {
	var buf bytes.Buffer
	o := ExperimentOptions{DataBlocks: 1 << 16, RequestsPerCore: 200, Mixes: 1}
	if err := RunExperiment("ablation-sched", o, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}

func TestDeviceWithIntegrity(t *testing.T) {
	for _, v := range []Variant{Baseline, Fork} {
		d, err := NewDevice(DeviceConfig{Blocks: 512, BlockSize: 32, Variant: v, Integrity: true, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(3)
		shadow := map[uint64][]byte{}
		for i := 0; i < 200; i++ {
			addr := r.Uint64n(100)
			if r.Float64() < 0.5 {
				p := pay32(byte(r.Uint64()))
				if err := d.Write(addr, p); err != nil {
					t.Fatal(err)
				}
				shadow[addr] = p
			} else {
				got, err := d.Read(addr)
				if err != nil {
					t.Fatal(err)
				}
				want := shadow[addr]
				if want == nil {
					want = make([]byte, 32)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("variant %d: integrity-protected RYW broken", v)
				}
			}
		}
		root, ok := d.IntegrityRoot()
		if !ok || root == [32]byte{} {
			t.Fatal("integrity root missing")
		}
	}
}

func TestDeviceIntegrityRootOffByDefault(t *testing.T) {
	d := newDevice(t, Fork)
	if _, ok := d.IntegrityRoot(); ok {
		t.Fatal("integrity root reported without Integrity enabled")
	}
}
