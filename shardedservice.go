package forkoram

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"forkoram/internal/rng"
	"forkoram/internal/wal"
)

// ErrShardDown marks operations refused because they route to a shard
// whose supervisor has exited (crash-injected death in the chaos
// harness, or a fail-stop that was never restarted). Sibling shards
// keep serving their slices of the address space; RestartShard — or the
// router's self-heal loop, which is on by default — brings the dead
// shard back from its durable stores, so ErrShardDown is a transient
// condition, not a terminal one.
var ErrShardDown = errors.New("forkoram: shard down (supervisor exited)")

// ShardedServiceConfig configures a ShardedService: S independent
// supervised Service stacks behind an address-partitioning router.
type ShardedServiceConfig struct {
	// Shards is the number of partitions (default 1). Must not exceed
	// Service.Device.Blocks — every shard owns at least one block. Only
	// consulted when RouterWAL is empty: once the router journal is
	// anchored, the journaled routing policy is authoritative, so a
	// fleet that resharded online reopens at its journaled width no
	// matter what Shards says.
	Shards int
	// Service is the per-shard template. Device.Blocks sizes the GLOBAL
	// address space; the router splits it into per-shard devices of
	// ~Blocks/Shards blocks each. Device.Seed derives a distinct label
	// stream per shard; WAL and Checkpoints MUST be nil in the template
	// (each shard needs its own stores — install them via PerShard).
	Service ServiceConfig
	// PerShard, when set, customizes one shard's config after the router
	// has derived it (blocks, seed) and before the shard Service is
	// built: install per-shard WAL/checkpoint stores, an Observer, a
	// fault schedule. The config is the shard's own copy; mutate freely.
	// The policy identifies which shard generation is being built —
	// store keys must be derived from (policy.Version, shard) so a
	// fleet rebuilt mid-migration finds both generations' stores.
	PerShard func(policy RoutingPolicy, shard int, cfg *ServiceConfig)
	// RouterWAL is the router's own journal store, holding routing-
	// policy transitions (anchor, reshard begin/advance/cutover/final)
	// — never block data. Defaults to a fresh in-memory store. Give the
	// router a durable store to make online reshards crash-recoverable:
	// a rebuild replays it and resumes dual routing at the exact
	// journaled watermark.
	RouterWAL WALStore
	// SelfHeal tunes the background loop that restarts Down shards.
	SelfHeal SelfHealConfig
	// reshardHook, when set, is consulted at each ReshardCrashPoint of
	// an online migration; returning true kills the router (chaos
	// harness only).
	reshardHook func(ReshardCrashPoint) bool
	// sleep replaces time.Sleep for the router's own waits (self-heal
	// cadence, migrator retry backoff). Tests hook it.
	sleep func(time.Duration)
}

// Validate checks the sharded configuration.
func (c ShardedServiceConfig) Validate() error {
	if c.Shards < 0 {
		return fmt.Errorf("forkoram: Shards must be >= 0 (got %d; 0 selects the single-shard default)", c.Shards)
	}
	s := c.Shards
	if s == 0 {
		s = 1
	}
	if uint64(s) > c.Service.Device.Blocks {
		return fmt.Errorf("forkoram: %d shards over %d blocks (every shard needs at least one block)",
			s, c.Service.Device.Blocks)
	}
	if c.Service.WAL != nil || c.Service.Checkpoints != nil {
		return fmt.Errorf("forkoram: template WAL/Checkpoints must be nil (per-shard stores go through PerShard)")
	}
	return c.SelfHeal.validate()
}

// ShardStats is one shard's slice of a ShardedStats breakdown.
type ShardStats struct {
	// Shard is the partition index; Blocks the number of global
	// addresses it owns under its set's policy.
	Shard  int
	Blocks uint64
	// Stats is the shard Service's own counters, State included.
	Stats ServiceStats
}

// ShardedStats aggregates a ShardedService: summed counters, a
// router-level state summary, and the per-shard breakdown.
type ShardedStats struct {
	// Shards is the width of the policy currently in force (the
	// recipient width after a cutover).
	Shards int
	// Total sums every serving shard's counters — recipient shards of
	// an open migration included. Total.State is the router state:
	// Healthy only when every serving shard is healthy, Closed/Failed
	// only when every shard is, Degraded otherwise — a single impaired
	// shard degrades only its slice of the address space, and the
	// summary says so without hiding it.
	Total ServiceStats
	// Healthy/Degraded/Failed/Closed/Down count serving shards per
	// state (Down covers supervisors that exited outside an orderly
	// Close), across both generations while a migration is open.
	Healthy, Degraded, Failed, Closed, Down int
	// PerShard is the current set's breakdown, indexed by shard.
	PerShard []ShardStats
	// Incoming is the recipient set's breakdown while a migration epoch
	// is open, nil otherwise.
	Incoming []ShardStats
	// Migration reports online-reshard progress; Migration.Epoch is the
	// routing-policy version in force even when no migration is open.
	Migration MigrationStats
	// HealRestarts/HealFailures count shard restarts performed (and
	// restart attempts failed) by the self-heal loop.
	HealRestarts, HealFailures uint64
}

// shardSet is one generation of supervised shards: the policy that
// routes into it, the running Services, their materialized configs
// (for cold restarts), and a per-shard restart lock serializing
// concurrent RestartShard calls on the same shard.
type shardSet struct {
	policy    RoutingPolicy
	svcs      []*Service // guarded by the router's mu
	cfgs      []ServiceConfig
	restartMu []sync.Mutex
}

// ShardedService is a goroutine-safe front door over independent
// Service stacks (Device + fork scheduler + WAL + checkpoints +
// supervisor), partitioning the logical address space under a versioned
// RoutingPolicy: global address a lives on shard a % S, as local
// address a / S.
//
// Routing invariant: the addr→shard map is a fixed public function of
// the address and the journaled policy epoch — never of the data, the
// access history, or any secret — so an adversary watching which shard
// serves a request learns exactly the residue class of the address
// (and, during a migration, on which side of the public watermark it
// falls), which the deployment declares public, and nothing else:
// within a shard the access sequence is a full Fork Path trace over
// that shard's own tree, carrying the usual guarantees. Migration
// traffic itself rides ordinary oblivious accesses on both trees.
//
// Failure isolation: each shard keeps its own group-commit pipeline,
// journal, checkpoint cadence, recovery loop, and fault epoch. A
// poisoned or recovering shard degrades only its slice of the address
// space; siblings keep serving theirs. A shard whose supervisor exited
// entirely answers ErrShardDown until RestartShard (or the self-heal
// loop) cold-starts it from its durable stores.
//
// Durability: acknowledgement is per shard and means exactly what a
// single Service's ack means — the write is durable in THAT shard's
// journal and applied to THAT shard's device. A cross-shard Batch is
// validated all-or-nothing before any shard is touched, but commits
// per shard: on a mid-batch shard failure the error reports the batch
// as failed while writes on surviving shards may already be durably
// applied (resolve by re-reading, exactly like any in-flight write).
//
// Online resharding: Reshard opens a migration epoch that copies every
// block from the donor set to a recipient set while both keep serving —
// see reshard.go for the protocol and its crash matrix.
type ShardedService struct {
	blocks    uint64
	blockSize int
	cfg       ShardedServiceConfig
	rlog      *wal.Log

	mu   sync.Mutex
	cond *sync.Cond // barrier waiters + in-flight drain, signalled under mu
	// cur is the serving generation; next is the recipient generation
	// while a migration epoch is open. Addresses below watermark route
	// under next's policy, the rest under cur's.
	cur       *shardSet
	next      *shardSet
	watermark uint64
	// barrier, while true, holds NEW writes to [barLo, barHi) so the
	// migrator can copy that chunk without a racing writer landing a
	// post-copy update on the donor only. Reads never wait: the donor
	// copy stays authoritative until the watermark publishes.
	barrier      bool
	barLo, barHi uint64
	// gen flips parity each time the migrator needs the previous
	// admission generation drained; active counts in-flight operations
	// per parity so the drain is exact, not a sleep.
	gen    uint64
	active [2]int64

	closed       bool
	rkilled      bool // router killed at a ReshardCrashPoint (chaos)
	migRunning   bool // one Reshard at a time
	pendingFinal bool // cutover durable, donor retirement not yet journaled
	// donors remembers the retired-but-not-yet-finalized generation (and
	// its policy) while pendingFinal, so a failed retirement can retry.
	donors      *shardSet
	donorPolicy RoutingPolicy
	mig         MigrationStats

	healRestarts, healFailures uint64
	healStop                   chan struct{}
	healDone                   chan struct{}
}

// NewShardedService builds the supervised fleet behind the router. Each
// shard's config is derived from the template: Device.Blocks becomes
// the shard's share of the global space, Device.Seed is re-derived per
// (policy version, shard) — distinct label streams — and nil
// WAL/Checkpoints default to fresh in-memory stores that the router
// retains for restarts.
//
// The router journal (RouterWAL) is replayed first. An empty journal is
// anchored with the config-derived policy {Version: 1, Shards}; a
// journal left by a crashed migration rebuilds BOTH generations and
// resumes dual routing at the journaled watermark (call Reshard to
// continue copying); a journal whose cutover committed but whose donor
// retirement didn't finishes the retirement here.
func NewShardedService(cfg ShardedServiceConfig) (*ShardedService, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Service.Device.Validate(); err != nil {
		return nil, err
	}
	s := cfg.Shards
	if s == 0 {
		s = 1
	}
	r := &ShardedService{
		blocks:    cfg.Service.Device.Blocks,
		blockSize: cfg.Service.Device.withDefaults().BlockSize,
		cfg:       cfg,
	}
	r.cfg.SelfHeal = r.cfg.SelfHeal.withDefaults()
	if r.cfg.sleep == nil {
		r.cfg.sleep = time.Sleep
	}
	r.cond = sync.NewCond(&r.mu)
	store := cfg.RouterWAL
	if store == nil {
		store = NewWALMemStore()
	}
	r.cfg.RouterWAL = store
	rlog, recs, err := wal.Open(store)
	if err != nil {
		return nil, fmt.Errorf("forkoram: router journal: %w", err)
	}
	r.rlog = rlog
	st, err := replayRouterJournal(recs, RoutingPolicy{Version: 1, Shards: s})
	if err != nil {
		return nil, err
	}
	if !st.anchored {
		if err := r.appendRouter(wal.OpPolicy, 0, mustEncodePolicy(st.cur)); err != nil {
			return nil, err
		}
	}
	if err := r.checkPolicy(st.cur); err != nil {
		return nil, err
	}
	cur, err := r.buildSet(st.cur)
	if err != nil {
		return nil, err
	}
	r.cur = cur
	r.mig.Epoch = st.cur.Version
	if st.next != nil {
		if err := r.checkPolicy(*st.next); err != nil {
			cur.close()
			return nil, err
		}
		next, err := r.buildSet(*st.next)
		if err != nil {
			cur.close()
			return nil, err
		}
		r.next = next
		r.watermark = st.watermark
		r.mig.Active = true
		r.mig.FromShards = st.cur.Shards
		r.mig.ToShards = st.next.Shards
		r.mig.Watermark = st.watermark
	}
	if st.pendingFinal {
		r.pendingFinal = true
		if err := r.retireDonors(nil, st.donor); err != nil {
			cur.close()
			return nil, err
		}
	}
	r.startSelfHeal()
	return r, nil
}

// mustEncodePolicy is for policies the router built itself — encoding
// them cannot fail.
func mustEncodePolicy(p RoutingPolicy) []byte {
	b, err := p.MarshalBinary()
	if err != nil {
		panic(err)
	}
	return b
}

// appendRouter journals one routing record durably (append + sync).
func (r *ShardedService) appendRouter(op uint8, addr uint64, payload []byte) error {
	if _, err := r.rlog.Append(op, addr, payload); err != nil {
		return fmt.Errorf("forkoram: router journal: %w", err)
	}
	if err := r.rlog.Sync(); err != nil {
		return fmt.Errorf("forkoram: router journal: %w", err)
	}
	return nil
}

// checkPolicy validates a journaled policy against the global space.
func (r *ShardedService) checkPolicy(p RoutingPolicy) error {
	if uint64(p.Shards) > r.blocks {
		return fmt.Errorf("forkoram: policy v%d: %d shards over %d blocks (every shard needs at least one block)",
			p.Version, p.Shards, r.blocks)
	}
	return nil
}

// shardConfig derives one shard's ServiceConfig under policy p.
func (r *ShardedService) shardConfig(p RoutingPolicy, i int) ServiceConfig {
	sc := r.cfg.Service
	sc.Device.Blocks = p.ShardBlocks(r.blocks, i)
	switch {
	case p.Version == 1 && p.Shards > 1:
		// Distinct per-shard label/engine randomness, deterministically
		// derived so a fixed template seed still reproduces the fleet.
		// This generation-1 derivation predates resharding and is kept
		// bit-stable so old fleets reopen from their existing stores.
		sc.Device.Seed = rng.SeedAt(sc.Device.Seed, 3000+uint64(i))
		if sc.Device.Faults != nil {
			fc := *sc.Device.Faults
			fc.Seed = rng.SeedAt(fc.Seed, 4000+uint64(i))
			sc.Device.Faults = &fc
		}
	case p.Version > 1:
		sc.Device.Seed = rng.SeedAt(rng.SeedAt(sc.Device.Seed, 5000+p.Version), uint64(i))
		if sc.Device.Faults != nil {
			fc := *sc.Device.Faults
			fc.Seed = rng.SeedAt(rng.SeedAt(fc.Seed, 6000+p.Version), uint64(i))
			sc.Device.Faults = &fc
		}
	}
	if r.cfg.PerShard != nil {
		r.cfg.PerShard(p, i, &sc)
	}
	// Materialize the stores now: withDefaults inside NewService would
	// otherwise create them anonymously and a restart could never find
	// the shard's surviving journal again.
	if sc.WAL == nil {
		sc.WAL = NewWALMemStore()
	}
	if sc.Checkpoints == nil {
		sc.Checkpoints = NewMemCheckpointStore()
	}
	return sc
}

// buildSet constructs the full shard generation for policy p.
func (r *ShardedService) buildSet(p RoutingPolicy) (*shardSet, error) {
	set := &shardSet{
		policy:    p,
		svcs:      make([]*Service, p.Shards),
		cfgs:      make([]ServiceConfig, p.Shards),
		restartMu: make([]sync.Mutex, p.Shards),
	}
	for i := 0; i < p.Shards; i++ {
		sc := r.shardConfig(p, i)
		set.cfgs[i] = sc
		svc, err := NewService(sc)
		if err != nil {
			for j := 0; j < i; j++ {
				set.svcs[j].Close()
			}
			return nil, fmt.Errorf("forkoram: shard %d (policy v%d): %w", i, p.Version, err)
		}
		set.svcs[i] = svc
	}
	return set, nil
}

// close shuts every shard of the set down concurrently.
func (s *shardSet) close() error {
	var wg sync.WaitGroup
	errs := make([]error, len(s.svcs))
	for i, svc := range s.svcs {
		if svc == nil {
			continue
		}
		wg.Add(1)
		go func(i int, svc *Service) {
			defer wg.Done()
			if err := svc.Close(); err != nil {
				errs[i] = fmt.Errorf("forkoram: shard %d (policy v%d): %w", i, s.policy.Version, err)
			}
		}(i, svc)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// shardBlocks returns how many global addresses land on shard i under
// addr % shards striping of blocks addresses.
func shardBlocks(blocks uint64, shards, i int) uint64 {
	return (blocks + uint64(shards) - 1 - uint64(i)) / uint64(shards)
}

// Shards returns the width of the routing policy currently in force.
func (r *ShardedService) Shards() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cur.policy.Shards
}

// Blocks returns the global address-space size.
func (r *ShardedService) Blocks() uint64 { return r.blocks }

// Policy returns the routing policy currently in force (the donor
// policy while a migration is open — the recipient's only after
// cutover).
func (r *ShardedService) Policy() RoutingPolicy {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cur.policy
}

// Migrating reports whether a migration epoch is open (dual routing in
// force).
func (r *ShardedService) Migrating() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next != nil
}

// ShardOf returns the shard serving global address addr right now —
// the routing function, exported because it is public information by
// design. During a migration the answer names a shard of whichever
// generation the watermark assigns the address to.
func (r *ShardedService) ShardOf(addr uint64) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next != nil && addr < r.watermark {
		return r.next.policy.ShardOf(addr)
	}
	return r.cur.policy.ShardOf(addr)
}

// routeView is one operation's admission snapshot: the generations and
// watermark it routes under, plus the parity slot its in-flight count
// landed in. Operations admitted before a watermark publish keep their
// snapshot — the donor copy they may touch stays authoritative until
// they exit, which the migrator's drain guarantees.
type routeView struct {
	cur, next *shardSet
	watermark uint64
	par       int
}

// lookup routes a global address under the view.
func (v routeView) lookup(addr uint64) (*shardSet, int) {
	if v.next != nil && addr < v.watermark {
		return v.next, v.next.policy.ShardOf(addr)
	}
	return v.cur, v.cur.policy.ShardOf(addr)
}

// admit snapshots the routing state and registers the caller in-flight.
// Caller holds mu.
func (r *ShardedService) admit() routeView {
	v := routeView{cur: r.cur, next: r.next, watermark: r.watermark, par: int(r.gen & 1)}
	r.active[v.par]++
	return v
}

// enterOp admits a single-address operation, waiting out a migration
// barrier only when the op writes inside the chunk being copied.
func (r *ShardedService) enterOp(addr uint64, write bool) (routeView, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.closed {
			return routeView{}, ErrClosed
		}
		if r.rkilled {
			return routeView{}, errKilled
		}
		if write && r.barrier && addr >= r.barLo && addr < r.barHi {
			r.cond.Wait()
			continue
		}
		return r.admit(), nil
	}
}

// enterBatch admits a batch, waiting only when one of its WRITE ops
// lands in the barred chunk. The whole batch is admitted under one
// routing snapshot, so its all-or-nothing validation and its fan-out
// agree on a single epoch.
func (r *ShardedService) enterBatch(ops []BatchOp) (routeView, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.closed {
			return routeView{}, ErrClosed
		}
		if r.rkilled {
			return routeView{}, errKilled
		}
		if r.barrier && batchHitsBarrier(ops, r.barLo, r.barHi) {
			r.cond.Wait()
			continue
		}
		return r.admit(), nil
	}
}

// batchHitsBarrier reports whether any write op lands in [lo, hi).
func batchHitsBarrier(ops []BatchOp, lo, hi uint64) bool {
	for _, op := range ops {
		if op.Write && op.Addr >= lo && op.Addr < hi {
			return true
		}
	}
	return false
}

// exitOp retires an admission; the last exiter of a drained parity
// wakes the migrator.
func (r *ShardedService) exitOp(v routeView) {
	r.mu.Lock()
	r.active[v.par]--
	if r.active[v.par] == 0 {
		r.cond.Broadcast()
	}
	r.mu.Unlock()
}

// svcAt reads the current incarnation of one shard (restarts swap the
// slot under mu).
func (r *ShardedService) svcAt(set *shardSet, sh int) *Service {
	r.mu.Lock()
	svc := set.svcs[sh]
	r.mu.Unlock()
	return svc
}

// shard returns the current Service of shard i of the serving set.
func (r *ShardedService) shard(i int) *Service {
	r.mu.Lock()
	svc := r.cur.svcs[i]
	r.mu.Unlock()
	return svc
}

// checkAddr validates a global address at the router, so out-of-range
// requests fail identically regardless of which shard they would hash
// to (and before touching any shard).
func (r *ShardedService) checkAddr(addr uint64) error {
	if addr >= r.blocks {
		return fmt.Errorf("forkoram: address %d out of range (blocks=%d)", addr, r.blocks)
	}
	return nil
}

// Read returns the contents of the global block at addr, served by its
// shard. Safe for concurrent use; concurrency across shards is real
// parallelism (independent supervisors, devices, and journals). Reads
// never wait on a migration barrier.
func (r *ShardedService) Read(ctx context.Context, addr uint64) ([]byte, error) {
	if err := r.checkAddr(addr); err != nil {
		return nil, err
	}
	v, err := r.enterOp(addr, false)
	if err != nil {
		return nil, err
	}
	defer r.exitOp(v)
	set, sh := v.lookup(addr)
	out, err := r.svcAt(set, sh).Read(ctx, set.policy.Local(addr))
	return out, passShardErr(set, sh, err)
}

// Write durably replaces the global block at addr with data (exactly
// BlockSize bytes), with the single-Service ack contract applied to the
// owning shard: nil means journaled durably and applied there. A write
// into the chunk a migrator is actively copying waits for that chunk's
// watermark to publish (bounded by one chunk copy), then lands on the
// recipient shard.
func (r *ShardedService) Write(ctx context.Context, addr uint64, data []byte) error {
	if err := r.checkAddr(addr); err != nil {
		return err
	}
	if len(data) != r.blockSize {
		return fmt.Errorf("forkoram: payload %d bytes, want %d", len(data), r.blockSize)
	}
	v, err := r.enterOp(addr, true)
	if err != nil {
		return err
	}
	defer r.exitOp(v)
	set, sh := v.lookup(addr)
	return passShardErr(set, sh, r.svcAt(set, sh).Write(ctx, set.policy.Local(addr), data))
}

// passShardErr annotates a shard-death error with the shard that served
// the op; other errors pass through untouched.
func passShardErr(set *shardSet, sh int, err error) error {
	if err != nil && errors.Is(err, errKilled) {
		return fmt.Errorf("forkoram: shard %d (policy v%d): %w (%w)", sh, set.policy.Version, ErrShardDown, err)
	}
	return err
}

// wrapShard annotates a shard-local error with its shard index.
func wrapShard(set *shardSet, sh int, err error) error {
	if errors.Is(err, errKilled) {
		return fmt.Errorf("forkoram: shard %d (policy v%d): %w (%w)", sh, set.policy.Version, ErrShardDown, err)
	}
	return fmt.Errorf("forkoram: shard %d (policy v%d): %w", sh, set.policy.Version, err)
}

// shardSpan is one shard's slice of a cross-shard batch: the sub-ops
// routed to it and, per sub-op, its position in the caller's op list.
type shardSpan struct {
	set *shardSet
	sh  int
	ops []BatchOp
	pos []int
}

// setShard keys a batch span by (generation, shard).
type setShard struct {
	set *shardSet
	sh  int
}

// Batch executes ops across shards: validated all-or-nothing at the
// router (no shard is touched if any op is malformed), admitted under
// ONE routing snapshot — the epoch that admitted the batch routes every
// op, even if a watermark publishes mid-flight — split by the routing
// function with per-shard order preserved, fanned out to every involved
// shard concurrently, and fanned back positionally. Each shard's
// sub-batch keeps the full single-Service batch semantics (group
// commit, Fork merge window, per-shard durability of writes).
//
// A nil error means every shard acknowledged its sub-batch. On error,
// sub-batches on shards that did not fail may have been durably applied
// — the per-shard ack contract; re-read to resolve, as with any write
// left in flight by a failure.
func (r *ShardedService) Batch(ctx context.Context, ops []BatchOp) ([][]byte, error) {
	for i, op := range ops {
		if err := r.checkAddr(op.Addr); err != nil {
			return nil, fmt.Errorf("forkoram: batch op %d: %w", i, err)
		}
		if op.Write && len(op.Data) != r.blockSize {
			return nil, fmt.Errorf("forkoram: batch op %d: payload %d bytes, want %d",
				i, len(op.Data), r.blockSize)
		}
	}
	if len(ops) == 0 {
		return [][]byte{}, nil
	}
	v, err := r.enterBatch(ops)
	if err != nil {
		return nil, err
	}
	defer r.exitOp(v)
	spans := make(map[setShard]*shardSpan)
	var order []*shardSpan
	for i, op := range ops {
		set, sh := v.lookup(op.Addr)
		key := setShard{set, sh}
		sp := spans[key]
		if sp == nil {
			sp = &shardSpan{set: set, sh: sh}
			spans[key] = sp
			order = append(order, sp)
		}
		local := op
		local.Addr = set.policy.Local(op.Addr)
		sp.ops = append(sp.ops, local)
		sp.pos = append(sp.pos, i)
	}
	results := make([][]byte, len(ops))
	if len(order) == 1 {
		// Single-shard batch: serve on the caller's goroutine.
		sp := order[0]
		out, err := r.svcAt(sp.set, sp.sh).Batch(ctx, sp.ops)
		if err != nil {
			return nil, wrapShard(sp.set, sp.sh, err)
		}
		for j, p := range sp.pos {
			results[p] = out[j]
		}
		return results, nil
	}
	var wg sync.WaitGroup
	errs := make([]error, len(order))
	for k, sp := range order {
		wg.Add(1)
		go func(k int, sp *shardSpan) {
			defer wg.Done()
			out, err := r.svcAt(sp.set, sp.sh).Batch(ctx, sp.ops)
			if err != nil {
				errs[k] = wrapShard(sp.set, sp.sh, err)
				return
			}
			for j, p := range sp.pos {
				results[p] = out[j]
			}
		}(k, sp)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// servingSets snapshots the generations currently serving traffic.
func (r *ShardedService) servingSets() []*shardSet {
	r.mu.Lock()
	defer r.mu.Unlock()
	sets := []*shardSet{r.cur}
	if r.next != nil {
		sets = append(sets, r.next)
	}
	return sets
}

// Checkpoint forces a checkpoint on every serving shard (recipient
// generation included) concurrently, each quiescing and truncating its
// own journal. The first failure is returned; other shards' checkpoints
// still commit.
func (r *ShardedService) Checkpoint(ctx context.Context) error {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var errs []error
	for _, set := range r.servingSets() {
		for i := range set.svcs {
			wg.Add(1)
			go func(set *shardSet, i int) {
				defer wg.Done()
				if err := r.svcAt(set, i).Checkpoint(ctx); err != nil {
					mu.Lock()
					errs = append(errs, wrapShard(set, i, err))
					mu.Unlock()
				}
			}(set, i)
		}
	}
	wg.Wait()
	return errors.Join(errs...)
}

// RestartShard cold-starts shard i of the serving generation from its
// durable stores (journal + checkpoint), replacing the previous
// incarnation — the path back to full service after a shard
// fail-stopped or its supervisor died. The old incarnation is closed
// first (a no-op if it already exited); every acknowledged write on the
// shard survives, by the single-Service recovery contract. Safe to call
// concurrently with traffic (requests racing the swap land on one
// incarnation or the other) and concurrently with itself: a per-shard
// lock serializes restarts of the same shard.
func (r *ShardedService) RestartShard(i int) error {
	r.mu.Lock()
	set := r.cur
	r.mu.Unlock()
	if i < 0 || i >= set.policy.Shards {
		return fmt.Errorf("forkoram: shard %d out of range (shards=%d)", i, set.policy.Shards)
	}
	return r.restartIn(set, i)
}

// restartIn restarts one shard of one generation, serialized per shard.
func (r *ShardedService) restartIn(set *shardSet, i int) error {
	set.restartMu[i].Lock()
	defer set.restartMu[i].Unlock()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	old := set.svcs[i]
	r.mu.Unlock()
	old.Close()
	svc, err := NewService(set.cfgs[i])
	if err != nil {
		return fmt.Errorf("forkoram: shard %d restart: %w", i, err)
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		svc.Close()
		return ErrClosed
	}
	set.svcs[i] = svc
	r.mu.Unlock()
	return nil
}

// Close stops the self-heal loop, refuses further admissions, and shuts
// every serving shard down concurrently (drain, final checkpoint,
// supervisor shutdown), returning the joined per-shard errors. An
// in-flight Reshard aborts at its next step with ErrClosed; its journal
// state stays resumable by a rebuild.
func (r *ShardedService) Close() error {
	r.stopSelfHeal()
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		r.cond.Broadcast()
	}
	cur, next := r.cur, r.next
	r.mu.Unlock()
	var errs []error
	errs = append(errs, r.closeSet(cur))
	if next != nil {
		errs = append(errs, r.closeSet(next))
	}
	return errors.Join(errs...)
}

// closeSet shuts one generation down, healing shards whose close was
// crash-killed: a kill inside a shard's final checkpoint is a crash
// like any other, so the shard is cold-started from its durable stores
// and closed again — by the time Close returns, every shard either had
// an orderly shutdown or failed it for a reason kills don't explain.
// (Restarts after Close are refused, so the healing must happen here.)
func (r *ShardedService) closeSet(set *shardSet) error {
	for {
		err := set.close()
		if err == nil || !errors.Is(err, errKilled) {
			return err
		}
		for i, svc := range set.svcs {
			if svc == nil || svc.State() != stateKilled {
				continue
			}
			fresh, err := NewService(set.cfgs[i])
			if err != nil {
				if errors.Is(err, errKilled) {
					continue // cold start crash-injected too; next round
				}
				return fmt.Errorf("forkoram: shard %d (policy v%d): close heal: %w",
					i, set.policy.Version, err)
			}
			r.mu.Lock()
			set.svcs[i] = fresh
			r.mu.Unlock()
		}
	}
}

// State returns the router-level state summary (see ShardedStats.Total).
func (r *ShardedService) State() ServiceState {
	return r.Stats().Total.State
}

// Stats snapshots every serving shard and aggregates.
func (r *ShardedService) Stats() ShardedStats {
	r.mu.Lock()
	cur := r.cur
	curSvcs := append([]*Service(nil), r.cur.svcs...)
	var next *shardSet
	var nextSvcs []*Service
	if r.next != nil {
		next = r.next
		nextSvcs = append([]*Service(nil), r.next.svcs...)
	}
	mig := r.mig
	mig.Active = r.next != nil
	mig.Epoch = r.cur.policy.Version
	mig.Watermark = r.watermark
	hr, hf := r.healRestarts, r.healFailures
	r.mu.Unlock()

	st := ShardedStats{
		Shards:       cur.policy.Shards,
		PerShard:     make([]ShardStats, len(curSvcs)),
		Migration:    mig,
		HealRestarts: hr,
		HealFailures: hf,
	}
	serving := len(curSvcs) + len(nextSvcs)
	fold := func(dst []ShardStats, set *shardSet, svcs []*Service) {
		for i, svc := range svcs {
			ss := svc.Stats()
			dst[i] = ShardStats{Shard: i, Blocks: set.policy.ShardBlocks(r.blocks, i), Stats: ss}
			addStats(&st.Total, &ss)
			switch ss.State {
			case StateHealthy:
				st.Healthy++
			case StateDegraded:
				st.Degraded++
			case StateFailed:
				st.Failed++
			case StateClosed:
				st.Closed++
			default:
				st.Down++
			}
		}
	}
	fold(st.PerShard, cur, curSvcs)
	if next != nil {
		st.Incoming = make([]ShardStats, len(nextSvcs))
		fold(st.Incoming, next, nextSvcs)
	}
	switch {
	case st.Healthy == serving:
		st.Total.State = StateHealthy
	case st.Closed == serving:
		st.Total.State = StateClosed
	case st.Failed+st.Down == serving:
		st.Total.State = StateFailed
	default:
		st.Total.State = StateDegraded
	}
	return st
}

// addStats folds one shard's counters into an aggregate.
func addStats(dst, src *ServiceStats) {
	dst.Reads += src.Reads
	dst.Writes += src.Writes
	dst.Batches += src.Batches
	dst.Overloaded += src.Overloaded
	dst.Recoveries += src.Recoveries
	dst.FailedRecoveries += src.FailedRecoveries
	dst.ReplayedOps += src.ReplayedOps
	dst.Checkpoints += src.Checkpoints
	dst.WALRecords += src.WALRecords
	dst.WALSyncs += src.WALSyncs
	dst.Groups += src.Groups
	dst.GroupedOps += src.GroupedOps
	for i := range dst.GroupSizes {
		dst.GroupSizes[i] += src.GroupSizes[i]
	}
	dst.Pipeline.Add(src.Pipeline)
}
