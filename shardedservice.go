package forkoram

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"forkoram/internal/rng"
)

// ErrShardDown marks operations refused because they route to a shard
// whose supervisor has exited (crash-injected death in the chaos
// harness, or a fail-stop that was never restarted). Sibling shards
// keep serving their slices of the address space; RestartShard brings
// the dead shard back from its durable stores.
var ErrShardDown = errors.New("forkoram: shard down (supervisor exited)")

// ShardedServiceConfig configures a ShardedService: S independent
// supervised Service stacks behind an address-partitioning router.
type ShardedServiceConfig struct {
	// Shards is the number of partitions (default 1). Must not exceed
	// Service.Device.Blocks — every shard owns at least one block.
	Shards int
	// Service is the per-shard template. Device.Blocks sizes the GLOBAL
	// address space; the router splits it into per-shard devices of
	// ~Blocks/Shards blocks each. Device.Seed derives a distinct label
	// stream per shard; WAL and Checkpoints MUST be nil in the template
	// (each shard needs its own stores — install them via PerShard).
	Service ServiceConfig
	// PerShard, when set, customizes one shard's config after the router
	// has derived it (blocks, seed) and before the shard Service is
	// built: install per-shard WAL/checkpoint stores, an Observer, a
	// fault schedule. The config is the shard's own copy; mutate freely.
	PerShard func(shard int, cfg *ServiceConfig)
}

// Validate checks the sharded configuration.
func (c ShardedServiceConfig) Validate() error {
	if c.Shards < 0 {
		return fmt.Errorf("forkoram: Shards must be positive")
	}
	s := c.Shards
	if s == 0 {
		s = 1
	}
	if uint64(s) > c.Service.Device.Blocks {
		return fmt.Errorf("forkoram: %d shards over %d blocks (every shard needs at least one block)",
			s, c.Service.Device.Blocks)
	}
	if c.Service.WAL != nil || c.Service.Checkpoints != nil {
		return fmt.Errorf("forkoram: template WAL/Checkpoints must be nil (per-shard stores go through PerShard)")
	}
	return nil
}

// ShardStats is one shard's slice of a ShardedStats breakdown.
type ShardStats struct {
	// Shard is the partition index; Blocks the number of global
	// addresses it owns (addr with addr % Shards == Shard).
	Shard  int
	Blocks uint64
	// Stats is the shard Service's own counters, State included.
	Stats ServiceStats
}

// ShardedStats aggregates a ShardedService: summed counters, a
// router-level state summary, and the per-shard breakdown.
type ShardedStats struct {
	Shards int
	// Total sums every shard's counters. Total.State is the router
	// state: Healthy only when every shard is healthy, Closed/Failed
	// only when every shard is, Degraded otherwise — a single impaired
	// shard degrades only its residue class of the address space, and
	// the summary says so without hiding it.
	Total ServiceStats
	// Healthy/Degraded/Failed/Closed/Down count shards per state (Down
	// covers supervisors that exited outside an orderly Close).
	Healthy, Degraded, Failed, Closed, Down int
	// PerShard is the per-shard breakdown, indexed by shard.
	PerShard []ShardStats
}

// ShardedService is a goroutine-safe front door over S independent
// Service stacks (Device + fork scheduler + WAL + checkpoints +
// supervisor), statically partitioning the logical address space:
// global address a lives on shard a % S, as local address a / S.
//
// Routing invariant: the addr→shard map is a fixed public function of
// the address alone — never of the data, the access history, or any
// secret — so an adversary watching which shard serves a request learns
// exactly the residue class of the address, which the deployment
// declares public (the same way the total request count is public), and
// nothing else: within a shard the access sequence is a full Fork Path
// trace over that shard's own tree, carrying the usual guarantees.
//
// Failure isolation: each shard keeps its own group-commit pipeline,
// journal, checkpoint cadence, recovery loop, and fault epoch. A
// poisoned or recovering shard degrades only its slice of the address
// space; siblings keep serving theirs. A shard whose supervisor exited
// entirely answers ErrShardDown until RestartShard cold-starts it from
// its durable stores.
//
// Durability: acknowledgement is per shard and means exactly what a
// single Service's ack means — the write is durable in THAT shard's
// journal and applied to THAT shard's device. A cross-shard Batch is
// validated all-or-nothing before any shard is touched, but commits
// per shard: on a mid-batch shard failure the error reports the batch
// as failed while writes on surviving shards may already be durably
// applied (resolve by re-reading, exactly like any in-flight write).
type ShardedService struct {
	shards    int
	blocks    uint64
	blockSize int

	mu   sync.RWMutex // guards svcs slice swaps (RestartShard)
	svcs []*Service
	cfgs []ServiceConfig // materialized per-shard configs, for RestartShard
}

// NewShardedService builds S supervised shards behind the router. Each
// shard's config is derived from the template: Device.Blocks becomes
// the shard's share of the global space, Device.Seed is re-derived per
// shard (distinct label streams), and nil WAL/Checkpoints default to
// fresh in-memory stores that the router retains for RestartShard.
func NewShardedService(cfg ShardedServiceConfig) (*ShardedService, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Service.Device.Validate(); err != nil {
		return nil, err
	}
	s := cfg.Shards
	if s == 0 {
		s = 1
	}
	r := &ShardedService{
		shards:    s,
		blocks:    cfg.Service.Device.Blocks,
		blockSize: cfg.Service.Device.withDefaults().BlockSize,
		svcs:      make([]*Service, s),
		cfgs:      make([]ServiceConfig, s),
	}
	for i := 0; i < s; i++ {
		sc := cfg.Service
		sc.Device.Blocks = shardBlocks(r.blocks, s, i)
		if s > 1 {
			// Distinct per-shard label/engine randomness, deterministically
			// derived so a fixed template seed still reproduces the fleet.
			sc.Device.Seed = rng.SeedAt(sc.Device.Seed, 3000+uint64(i))
			if sc.Device.Faults != nil {
				fc := *sc.Device.Faults
				fc.Seed = rng.SeedAt(fc.Seed, 4000+uint64(i))
				sc.Device.Faults = &fc
			}
		}
		if cfg.PerShard != nil {
			cfg.PerShard(i, &sc)
		}
		// Materialize the stores now: withDefaults inside NewService would
		// otherwise create them anonymously and RestartShard could never
		// find the shard's surviving journal again.
		if sc.WAL == nil {
			sc.WAL = NewWALMemStore()
		}
		if sc.Checkpoints == nil {
			sc.Checkpoints = NewMemCheckpointStore()
		}
		r.cfgs[i] = sc
		svc, err := NewService(sc)
		if err != nil {
			for j := 0; j < i; j++ {
				r.svcs[j].Close()
			}
			return nil, fmt.Errorf("forkoram: shard %d: %w", i, err)
		}
		r.svcs[i] = svc
	}
	return r, nil
}

// shardBlocks returns how many global addresses land on shard i under
// addr % shards striping of blocks addresses.
func shardBlocks(blocks uint64, shards, i int) uint64 {
	return (blocks + uint64(shards) - 1 - uint64(i)) / uint64(shards)
}

// Shards returns the shard count.
func (r *ShardedService) Shards() int { return r.shards }

// Blocks returns the global address-space size.
func (r *ShardedService) Blocks() uint64 { return r.blocks }

// ShardOf returns the shard serving global address addr — the routing
// function, exported because it is public information by design.
func (r *ShardedService) ShardOf(addr uint64) int {
	return int(addr % uint64(r.shards))
}

// route splits a global address into (shard Service, local address).
func (r *ShardedService) route(addr uint64) (*Service, uint64) {
	r.mu.RLock()
	svc := r.svcs[addr%uint64(r.shards)]
	r.mu.RUnlock()
	return svc, addr / uint64(r.shards)
}

// shard returns the current Service of one shard.
func (r *ShardedService) shard(i int) *Service {
	r.mu.RLock()
	svc := r.svcs[i]
	r.mu.RUnlock()
	return svc
}

// checkAddr validates a global address at the router, so out-of-range
// requests fail identically regardless of which shard they would hash
// to (and before touching any shard).
func (r *ShardedService) checkAddr(addr uint64) error {
	if addr >= r.blocks {
		return fmt.Errorf("forkoram: address %d out of range (blocks=%d)", addr, r.blocks)
	}
	return nil
}

// Read returns the contents of the global block at addr, served by its
// shard. Safe for concurrent use; concurrency across shards is real
// parallelism (independent supervisors, devices, and journals).
func (r *ShardedService) Read(ctx context.Context, addr uint64) ([]byte, error) {
	if err := r.checkAddr(addr); err != nil {
		return nil, err
	}
	svc, local := r.route(addr)
	out, err := svc.Read(ctx, local)
	return out, r.shardErr(addr, err)
}

// Write durably replaces the global block at addr with data (exactly
// BlockSize bytes), with the single-Service ack contract applied to the
// owning shard: nil means journaled durably and applied there.
func (r *ShardedService) Write(ctx context.Context, addr uint64, data []byte) error {
	if err := r.checkAddr(addr); err != nil {
		return err
	}
	if len(data) != r.blockSize {
		return fmt.Errorf("forkoram: payload %d bytes, want %d", len(data), r.blockSize)
	}
	svc, local := r.route(addr)
	return r.shardErr(addr, svc.Write(ctx, local, data))
}

// shardErr annotates a shard-death error with the shard that owns addr;
// other errors pass through untouched.
func (r *ShardedService) shardErr(addr uint64, err error) error {
	if err != nil && errors.Is(err, errKilled) {
		return fmt.Errorf("forkoram: shard %d: %w (%w)", r.ShardOf(addr), ErrShardDown, err)
	}
	return err
}

// shardSpan is one shard's slice of a cross-shard batch: the sub-ops
// routed to it and, per sub-op, its position in the caller's op list.
type shardSpan struct {
	ops []BatchOp
	pos []int
}

// Batch executes ops across shards: validated all-or-nothing at the
// router (no shard is touched if any op is malformed), split by the
// routing function with per-shard order preserved, fanned out to every
// involved shard concurrently, and fanned back positionally. Each
// shard's sub-batch keeps the full single-Service batch semantics
// (group commit, Fork merge window, per-shard durability of writes).
//
// A nil error means every shard acknowledged its sub-batch. On error,
// sub-batches on shards that did not fail may have been durably applied
// — the per-shard ack contract; re-read to resolve, as with any write
// left in flight by a failure.
func (r *ShardedService) Batch(ctx context.Context, ops []BatchOp) ([][]byte, error) {
	for i, op := range ops {
		if err := r.checkAddr(op.Addr); err != nil {
			return nil, fmt.Errorf("forkoram: batch op %d: %w", i, err)
		}
		if op.Write && len(op.Data) != r.blockSize {
			return nil, fmt.Errorf("forkoram: batch op %d: payload %d bytes, want %d",
				i, len(op.Data), r.blockSize)
		}
	}
	if len(ops) == 0 {
		return [][]byte{}, nil
	}
	spans := make(map[int]*shardSpan)
	for i, op := range ops {
		sh := r.ShardOf(op.Addr)
		sp := spans[sh]
		if sp == nil {
			sp = &shardSpan{}
			spans[sh] = sp
		}
		local := op
		local.Addr = op.Addr / uint64(r.shards)
		sp.ops = append(sp.ops, local)
		sp.pos = append(sp.pos, i)
	}
	results := make([][]byte, len(ops))
	if len(spans) == 1 {
		// Single-shard batch: serve on the caller's goroutine.
		for sh, sp := range spans {
			out, err := r.shard(sh).Batch(ctx, sp.ops)
			if err != nil {
				return nil, r.wrapShard(sh, err)
			}
			for j, p := range sp.pos {
				results[p] = out[j]
			}
		}
		return results, nil
	}
	var wg sync.WaitGroup
	errs := make([]error, r.shards)
	for sh, sp := range spans {
		wg.Add(1)
		go func(sh int, sp *shardSpan) {
			defer wg.Done()
			out, err := r.shard(sh).Batch(ctx, sp.ops)
			if err != nil {
				errs[sh] = r.wrapShard(sh, err)
				return
			}
			for j, p := range sp.pos {
				results[p] = out[j]
			}
		}(sh, sp)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// wrapShard annotates a shard-local error with its shard index.
func (r *ShardedService) wrapShard(sh int, err error) error {
	if errors.Is(err, errKilled) {
		return fmt.Errorf("forkoram: shard %d: %w (%w)", sh, ErrShardDown, err)
	}
	return fmt.Errorf("forkoram: shard %d: %w", sh, err)
}

// Checkpoint forces a checkpoint on every shard concurrently, each
// quiescing and truncating its own journal. The first failure is
// returned; other shards' checkpoints still commit.
func (r *ShardedService) Checkpoint(ctx context.Context) error {
	var wg sync.WaitGroup
	errs := make([]error, r.shards)
	for i := 0; i < r.shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := r.shard(i).Checkpoint(ctx); err != nil {
				errs[i] = r.wrapShard(i, err)
			}
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// RestartShard cold-starts shard i from its durable stores (journal +
// checkpoint), replacing the previous incarnation — the path back to
// full service after a shard fail-stopped or its supervisor died. The
// old incarnation is closed first (a no-op if it already exited); every
// acknowledged write on the shard survives, by the single-Service
// recovery contract. Safe to call concurrently with traffic: requests
// racing the swap land on one incarnation or the other.
func (r *ShardedService) RestartShard(i int) error {
	if i < 0 || i >= r.shards {
		return fmt.Errorf("forkoram: shard %d out of range (shards=%d)", i, r.shards)
	}
	old := r.shard(i)
	old.Close()
	svc, err := NewService(r.cfgs[i])
	if err != nil {
		return fmt.Errorf("forkoram: shard %d restart: %w", i, err)
	}
	r.mu.Lock()
	r.svcs[i] = svc
	r.mu.Unlock()
	return nil
}

// Close stops every shard concurrently (drain, final checkpoint,
// supervisor shutdown) and returns the joined per-shard errors.
func (r *ShardedService) Close() error {
	var wg sync.WaitGroup
	errs := make([]error, r.shards)
	for i := 0; i < r.shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := r.shard(i).Close(); err != nil {
				errs[i] = r.wrapShard(i, err)
			}
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// State returns the router-level state summary (see ShardedStats.Total).
func (r *ShardedService) State() ServiceState {
	return r.Stats().Total.State
}

// Stats snapshots every shard and aggregates.
func (r *ShardedService) Stats() ShardedStats {
	st := ShardedStats{Shards: r.shards, PerShard: make([]ShardStats, r.shards)}
	for i := 0; i < r.shards; i++ {
		svc := r.shard(i)
		ss := svc.Stats()
		st.PerShard[i] = ShardStats{Shard: i, Blocks: shardBlocks(r.blocks, r.shards, i), Stats: ss}
		addStats(&st.Total, &ss)
		switch ss.State {
		case StateHealthy:
			st.Healthy++
		case StateDegraded:
			st.Degraded++
		case StateFailed:
			st.Failed++
		case StateClosed:
			st.Closed++
		default:
			st.Down++
		}
	}
	switch {
	case st.Healthy == r.shards:
		st.Total.State = StateHealthy
	case st.Closed == r.shards:
		st.Total.State = StateClosed
	case st.Failed+st.Down == r.shards:
		st.Total.State = StateFailed
	default:
		st.Total.State = StateDegraded
	}
	return st
}

// addStats folds one shard's counters into an aggregate.
func addStats(dst, src *ServiceStats) {
	dst.Reads += src.Reads
	dst.Writes += src.Writes
	dst.Batches += src.Batches
	dst.Overloaded += src.Overloaded
	dst.Recoveries += src.Recoveries
	dst.FailedRecoveries += src.FailedRecoveries
	dst.ReplayedOps += src.ReplayedOps
	dst.Checkpoints += src.Checkpoints
	dst.WALRecords += src.WALRecords
	dst.WALSyncs += src.WALSyncs
	dst.Groups += src.Groups
	dst.GroupedOps += src.GroupedOps
	for i := range dst.GroupSizes {
		dst.GroupSizes[i] += src.GroupSizes[i]
	}
	dst.Pipeline.Add(src.Pipeline)
}
