package forkoram

import (
	"bytes"
	"errors"
	"testing"

	"forkoram/internal/wal"
)

// TestRoutingPolicyRoundTrip pins the canonical encoding: deterministic
// bytes, exact round trip, strict rejection of malformed inputs.
func TestRoutingPolicyRoundTrip(t *testing.T) {
	for _, p := range []RoutingPolicy{
		{Version: 1, Shards: 1},
		{Version: 1, Shards: 3},
		{Version: 7, Shards: 4096},
		{Version: 1<<63 + 5, Shards: 1<<32 - 1},
	} {
		enc, err := p.MarshalBinary()
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		if len(enc) != routingPolicyLen {
			t.Fatalf("%+v encoded to %d bytes", p, len(enc))
		}
		got, err := UnmarshalRoutingPolicy(enc)
		if err != nil || got != p {
			t.Fatalf("round trip %+v -> %+v (err %v)", p, got, err)
		}
	}
	bad := [][]byte{
		nil,
		{},
		{routingPolicyFormat},
		make([]byte, routingPolicyLen-1),
		make([]byte, routingPolicyLen+1),
		append([]byte{99}, make([]byte, 12)...), // unknown format
		append([]byte{routingPolicyFormat}, make([]byte, 12)...), // version 0, shards 0
	}
	for _, b := range bad {
		if _, err := UnmarshalRoutingPolicy(b); !errors.Is(err, ErrBadPolicy) {
			t.Fatalf("accepted malformed policy %v (err %v)", b, err)
		}
	}
	if _, err := (RoutingPolicy{Version: 0, Shards: 2}).MarshalBinary(); err == nil {
		t.Fatal("encoded version-0 policy")
	}
	if _, err := (RoutingPolicy{Version: 1, Shards: 0}).MarshalBinary(); err == nil {
		t.Fatal("encoded zero-shard policy")
	}
}

// TestReshardPlanRoundTrip pins plan-level invariants: successor
// version, changed width.
func TestReshardPlanRoundTrip(t *testing.T) {
	pl := ReshardPlan{From: RoutingPolicy{Version: 3, Shards: 2}, To: RoutingPolicy{Version: 4, Shards: 5}}
	enc, err := pl.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalReshardPlan(enc)
	if err != nil || got != pl {
		t.Fatalf("round trip %+v -> %+v (err %v)", pl, got, err)
	}
	for _, bad := range []ReshardPlan{
		{From: RoutingPolicy{Version: 3, Shards: 2}, To: RoutingPolicy{Version: 5, Shards: 4}}, // skipped epoch
		{From: RoutingPolicy{Version: 3, Shards: 2}, To: RoutingPolicy{Version: 4, Shards: 2}}, // same width
	} {
		if _, err := bad.MarshalBinary(); err == nil {
			t.Fatalf("encoded invalid plan %+v", bad)
		}
	}
}

// TestReplayRouterJournal walks the record state machine through a full
// migration and checks each intermediate state plus the corruption
// rejections.
func TestReplayRouterJournal(t *testing.T) {
	def := RoutingPolicy{Version: 1, Shards: 2}
	anchor := wal.Record{Op: wal.OpPolicy, Payload: mustEncodePolicy(def)}
	plan := ReshardPlan{From: def, To: RoutingPolicy{Version: 2, Shards: 4}}
	planBytes, err := plan.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	begin := wal.Record{Op: wal.OpReshardBegin, Payload: planBytes}
	adv8 := wal.Record{Op: wal.OpReshardAdvance, Addr: 8}
	adv16 := wal.Record{Op: wal.OpReshardAdvance, Addr: 16}
	cut := wal.Record{Op: wal.OpReshardCutover}
	fin := wal.Record{Op: wal.OpReshardFinal}

	// Empty journal: default, unanchored.
	st, err := replayRouterJournal(nil, def)
	if err != nil || st.anchored || st.cur != def {
		t.Fatalf("empty journal -> %+v (err %v)", st, err)
	}
	// Mid-migration.
	st, err = replayRouterJournal([]wal.Record{anchor, begin, adv8, adv16}, def)
	if err != nil {
		t.Fatal(err)
	}
	if st.next == nil || *st.next != plan.To || st.watermark != 16 || st.cur != def {
		t.Fatalf("mid-migration state %+v", st)
	}
	// Cutover committed, retirement pending.
	st, err = replayRouterJournal([]wal.Record{anchor, begin, adv8, cut}, def)
	if err != nil {
		t.Fatal(err)
	}
	if st.next != nil || st.cur != plan.To || !st.pendingFinal || st.donor != def {
		t.Fatalf("post-cutover state %+v", st)
	}
	// Fully settled.
	st, err = replayRouterJournal([]wal.Record{anchor, begin, adv8, cut, fin}, def)
	if err != nil || st.pendingFinal || st.cur != plan.To || st.next != nil {
		t.Fatalf("settled state %+v (err %v)", st, err)
	}

	// Corruptions must fail loudly, never misroute.
	for name, recs := range map[string][]wal.Record{
		"advance outside migration": {anchor, adv8},
		"begin over wrong donor": {anchor, begin, adv8, cut, fin,
			{Op: wal.OpReshardBegin, Payload: planBytes}}, // cur is now v2/4, plan.From is v1/2
		"watermark regression":  {anchor, begin, adv16, adv8},
		"final without cutover": {anchor, fin},
		"cutover without begin": {anchor, cut},
		"garbled policy":        {{Op: wal.OpPolicy, Payload: []byte{1, 2, 3}}},
		"garbled plan":          {anchor, {Op: wal.OpReshardBegin, Payload: []byte{0}}},
		"foreign op":            {anchor, {Op: wal.OpWrite, Addr: 1}},
	} {
		if _, err := replayRouterJournal(recs, def); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

// FuzzRoutingPolicy: any input either fails strict decoding or
// round-trips to the identical bytes — a corrupted journaled policy can
// never silently misparse into different routing.
func FuzzRoutingPolicy(f *testing.F) {
	seed, _ := RoutingPolicy{Version: 2, Shards: 3}.MarshalBinary()
	f.Add(seed)
	f.Add([]byte{})
	f.Add(seed[:7])
	f.Add(append([]byte{42}, seed[1:]...))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := UnmarshalRoutingPolicy(data)
		if err != nil {
			if !errors.Is(err, ErrBadPolicy) {
				t.Fatalf("decode error outside the taxonomy: %v", err)
			}
			return
		}
		if p.Version == 0 || p.Shards < 1 {
			t.Fatalf("decoder accepted unusable policy %+v", p)
		}
		enc, err := p.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted policy %+v does not re-encode: %v", p, err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("round trip not exact: %x -> %+v -> %x", data, p, enc)
		}
	})
}

// FuzzReshardPlan: same exactness for the begin-record payload.
func FuzzReshardPlan(f *testing.F) {
	seed, _ := ReshardPlan{
		From: RoutingPolicy{Version: 1, Shards: 2},
		To:   RoutingPolicy{Version: 2, Shards: 4},
	}.MarshalBinary()
	f.Add(seed)
	f.Add(seed[:routingPolicyLen])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		pl, err := UnmarshalReshardPlan(data)
		if err != nil {
			if !errors.Is(err, ErrBadPolicy) {
				t.Fatalf("decode error outside the taxonomy: %v", err)
			}
			return
		}
		if pl.To.Version != pl.From.Version+1 || pl.To.Shards == pl.From.Shards {
			t.Fatalf("decoder accepted invalid plan %+v", pl)
		}
		enc, err := pl.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted plan %+v does not re-encode: %v", pl, err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("round trip not exact: %x -> %+v -> %x", data, pl, enc)
		}
	})
}
