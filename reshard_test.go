package forkoram

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"forkoram/internal/wal"
)

// reshardStores hands every shard generation (and the router) durable
// in-memory stores keyed by (policy version, shard), the way a real
// deployment would key files — so a fleet rebuilt mid-migration finds
// both generations' data again.
type reshardStores struct {
	mu     sync.Mutex
	router *wal.MemStore
	wals   map[[2]uint64]*wal.MemStore
	ckpts  map[[2]uint64]*MemCheckpointStore
}

func newReshardStores() *reshardStores {
	return &reshardStores{
		router: wal.NewMemStore(),
		wals:   make(map[[2]uint64]*wal.MemStore),
		ckpts:  make(map[[2]uint64]*MemCheckpointStore),
	}
}

func (s *reshardStores) perShard(p RoutingPolicy, shard int, sc *ServiceConfig) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := [2]uint64{p.Version, uint64(shard)}
	if s.wals[k] == nil {
		s.wals[k] = wal.NewMemStore()
		s.ckpts[k] = NewMemCheckpointStore()
	}
	sc.WAL = s.wals[k]
	sc.Checkpoints = s.ckpts[k]
}

func reshardTestConfig(shards int, blocks uint64, st *reshardStores) ShardedServiceConfig {
	cfg := shardedTestConfig(shards, blocks)
	cfg.PerShard = st.perShard
	cfg.RouterWAL = st.router
	return cfg
}

// TestReshardOnline splits 2→4 shards under concurrent traffic: the
// fleet serves reads and writes during the whole migration, every
// pre-migration and mid-migration write survives, and the journaled
// policy epoch advances.
func TestReshardOnline(t *testing.T) {
	const blocks = 48
	st := newReshardStores()
	svc, err := NewShardedService(reshardTestConfig(2, blocks, st))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()

	var mu sync.Mutex
	oracle := make(map[uint64][]byte)
	write := func(addr uint64, tag byte) {
		t.Helper()
		if err := svc.Write(ctx, addr, payload32(tag)); err != nil {
			t.Fatalf("write %d: %v", addr, err)
		}
		mu.Lock()
		oracle[addr] = payload32(tag)
		mu.Unlock()
	}
	for addr := uint64(0); addr < blocks; addr++ {
		write(addr, byte(addr))
	}

	// Client traffic concurrent with the migration, hitting every shard
	// generation. Each client owns the addresses ≡ c (mod 3) — one
	// writer per address, so read-your-writes asserts exactly.
	stop := make(chan struct{})
	var clientErr atomic.Value
	var served atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			mine := make(map[uint64][]byte)
			mu.Lock()
			for addr := uint64(c); addr < blocks; addr += 3 {
				mine[addr] = oracle[addr]
			}
			mu.Unlock()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				addr := uint64(c) + 3*uint64((i*5+c)%(blocks/3))
				if i%3 == 0 {
					tag := byte(128 + c*40 + i%40)
					if err := svc.Write(ctx, addr, payload32(tag)); err != nil {
						clientErr.Store(fmt.Errorf("client %d write %d: %w", c, addr, err))
						return
					}
					mine[addr] = payload32(tag)
					mu.Lock()
					oracle[addr] = payload32(tag)
					mu.Unlock()
				} else {
					got, err := svc.Read(ctx, addr)
					if err != nil {
						clientErr.Store(fmt.Errorf("client %d read %d: %w", c, addr, err))
						return
					}
					if !bytes.Equal(got, mine[addr]) {
						clientErr.Store(fmt.Errorf("client %d read %d: read-your-writes violated during migration", c, addr))
						return
					}
				}
				served.Add(1)
			}
		}(c)
	}

	if err := svc.Reshard(ctx, ReshardConfig{NewShards: 4, ChunkBlocks: 4}); err != nil {
		t.Fatalf("reshard: %v", err)
	}
	close(stop)
	wg.Wait()
	if err, ok := clientErr.Load().(error); ok && err != nil {
		t.Fatal(err)
	}
	if served.Load() == 0 {
		t.Fatal("no client ops served during the migration window")
	}

	if got := svc.Shards(); got != 4 {
		t.Fatalf("post-cutover Shards() = %d, want 4", got)
	}
	if p := svc.Policy(); p.Version != 2 || p.Shards != 4 {
		t.Fatalf("post-cutover policy %+v", p)
	}
	if svc.Migrating() {
		t.Fatal("migration still reported active after cutover")
	}
	stats := svc.Stats()
	if stats.Migration.Epoch != 2 || stats.Migration.Completed != 1 {
		t.Fatalf("migration stats %+v", stats.Migration)
	}
	if stats.Migration.BlocksMoved != blocks || stats.Migration.Chunks != blocks/4 {
		t.Fatalf("migration moved %d blocks in %d chunks, want %d in %d",
			stats.Migration.BlocksMoved, stats.Migration.Chunks, blocks, blocks/4)
	}
	for addr := uint64(0); addr < blocks; addr++ {
		got, err := svc.Read(ctx, addr)
		if err != nil {
			t.Fatalf("read %d after cutover: %v", addr, err)
		}
		if !bytes.Equal(got, oracle[addr]) {
			t.Fatalf("addr %d lost across reshard", addr)
		}
	}

	// The recipient policy survives a full fleet reopen: the router
	// journal, not the config's Shards field, decides the width.
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	svc2, err := NewShardedService(reshardTestConfig(2, blocks, st))
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if got := svc2.Shards(); got != 4 {
		t.Fatalf("reopened fleet at %d shards, want journaled 4", got)
	}
	for addr := uint64(0); addr < blocks; addr++ {
		got, err := svc2.Read(ctx, addr)
		if err != nil || !bytes.Equal(got, oracle[addr]) {
			t.Fatalf("addr %d wrong after reopen (err %v)", addr, err)
		}
	}
}

// TestReshardMerge shrinks 3→2: the protocol is symmetric.
func TestReshardMerge(t *testing.T) {
	const blocks = 30
	st := newReshardStores()
	svc, err := NewShardedService(reshardTestConfig(3, blocks, st))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	for addr := uint64(0); addr < blocks; addr++ {
		if err := svc.Write(ctx, addr, payload32(byte(addr+7))); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Reshard(ctx, ReshardConfig{NewShards: 2, ChunkBlocks: 7}); err != nil {
		t.Fatal(err)
	}
	if got := svc.Shards(); got != 2 {
		t.Fatalf("Shards() = %d, want 2", got)
	}
	for addr := uint64(0); addr < blocks; addr++ {
		got, err := svc.Read(ctx, addr)
		if err != nil || !bytes.Equal(got, payload32(byte(addr+7))) {
			t.Fatalf("addr %d wrong after merge (err %v)", addr, err)
		}
	}
}

// TestReshardResumeAfterKill kills the router mid-stream, rebuilds the
// fleet from the surviving stores, observes dual routing restored at
// the journaled watermark, and resumes the migration to completion with
// every acked write intact — the crash-recovery contract in miniature.
func TestReshardResumeAfterKill(t *testing.T) {
	const blocks = 40
	st := newReshardStores()
	cfg := reshardTestConfig(2, blocks, st)
	var kills atomic.Int32
	cfg.reshardHook = func(p ReshardCrashPoint) bool {
		// Fire once, mid-stream (every advance so far was synced, so the
		// journal is clean; the chaos campaign covers torn tails).
		if p == ReshardKillMidStream && kills.Load() == 0 {
			kills.Add(1)
			return true
		}
		return false
	}
	svc, err := NewShardedService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for addr := uint64(0); addr < blocks; addr++ {
		if err := svc.Write(ctx, addr, payload32(byte(addr))); err != nil {
			t.Fatal(err)
		}
	}
	err = svc.Reshard(ctx, ReshardConfig{NewShards: 3, ChunkBlocks: 8})
	if !errors.Is(err, errKilled) {
		t.Fatalf("reshard returned %v, want errKilled", err)
	}
	if !svc.killed() {
		t.Fatal("router not marked killed")
	}
	// A killed router refuses everything, like a dead process.
	if _, err := svc.Read(ctx, 0); !errors.Is(err, errKilled) {
		t.Fatalf("killed router served a read (err %v)", err)
	}
	svc.Close()

	// Rebuild over the same stores: the journal says a migration is
	// open; the fleet must come back dual-routed and resumable.
	cfg2 := reshardTestConfig(2, blocks, st)
	svc2, err := NewShardedService(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if !svc2.Migrating() {
		t.Fatal("rebuilt fleet lost the open migration epoch")
	}
	ms := svc2.Stats().Migration
	if ms.FromShards != 2 || ms.ToShards != 3 {
		t.Fatalf("rebuilt migration %+v", ms)
	}
	// Dual routing serves immediately — both sides of the watermark.
	for addr := uint64(0); addr < blocks; addr++ {
		got, err := svc2.Read(ctx, addr)
		if err != nil {
			t.Fatalf("read %d on rebuilt mid-migration fleet: %v", addr, err)
		}
		if !bytes.Equal(got, payload32(byte(addr))) {
			t.Fatalf("addr %d wrong on rebuilt mid-migration fleet", addr)
		}
	}
	// Writes land correctly on whichever generation owns the address.
	if err := svc2.Write(ctx, 1, payload32(0xEE)); err != nil {
		t.Fatal(err)
	}
	// Resume and finish.
	if err := svc2.Reshard(ctx, ReshardConfig{}); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got := svc2.Shards(); got != 3 {
		t.Fatalf("Shards() = %d after resumed cutover, want 3", got)
	}
	if svc2.Stats().Migration.Resumes != 1 {
		t.Fatalf("Resumes = %d, want 1", svc2.Stats().Migration.Resumes)
	}
	for addr := uint64(0); addr < blocks; addr++ {
		want := payload32(byte(addr))
		if addr == 1 {
			want = payload32(0xEE)
		}
		got, err := svc2.Read(ctx, addr)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("addr %d wrong after resumed reshard (err %v)", addr, err)
		}
	}
}

// TestReshardRejectsBadTargets pins the argument contract.
func TestReshardRejectsBadTargets(t *testing.T) {
	st := newReshardStores()
	svc, err := NewShardedService(reshardTestConfig(2, 16, st))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	if err := svc.Reshard(ctx, ReshardConfig{NewShards: 2}); err == nil {
		t.Fatal("accepted a reshard to the current width")
	}
	if err := svc.Reshard(ctx, ReshardConfig{}); err == nil {
		t.Fatal("accepted NewShards 0 with no journaled migration")
	}
	if err := svc.Reshard(ctx, ReshardConfig{NewShards: 17}); err == nil {
		t.Fatal("accepted more shards than blocks")
	}
}

// TestSelfHealRestartsDownShard kills one shard's supervisor and waits
// for the router's background loop (on by default) to cold-start it:
// ErrShardDown is transient, and acked writes survive the heal.
func TestSelfHealRestartsDownShard(t *testing.T) {
	const shards, blocks = 3, 24
	cfg := shardedTestConfig(shards, blocks)
	cfg.SelfHeal.Interval = time.Millisecond
	var armed, fired atomic.Bool
	consult := 0
	cfg.PerShard = func(_ RoutingPolicy, shard int, sc *ServiceConfig) {
		if shard == 2 {
			sc.crashHook = func(CrashPoint) bool {
				if !armed.Load() || fired.Load() {
					return false
				}
				consult++
				if consult == 4 {
					fired.Store(true)
					return true
				}
				return false
			}
		}
	}
	svc, err := NewShardedService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	for addr := uint64(0); addr < blocks; addr++ {
		if err := svc.Write(ctx, addr, payload32(byte(addr))); err != nil {
			t.Fatal(err)
		}
	}
	// Hammer shard 2 until the armed kill fires.
	armed.Store(true)
	killed := false
	for tag := byte(10); tag < 60 && !killed; tag++ {
		err := svc.Write(ctx, 2, payload32(2)) // keep the oracle value stable
		if errors.Is(err, ErrShardDown) {
			killed = true
		} else if err != nil {
			t.Fatalf("unexpected write error: %v", err)
		}
	}
	if !killed {
		t.Fatal("armed kill never fired")
	}
	// The loop must bring the shard back without any manual restart.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := svc.Stats()
		if st.Healthy == shards {
			if st.HealRestarts == 0 {
				t.Fatalf("shard healthy but HealRestarts = 0: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("self-heal never restarted the shard: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	for addr := uint64(0); addr < blocks; addr++ {
		got, err := svc.Read(ctx, addr)
		if err != nil || !bytes.Equal(got, payload32(byte(addr))) {
			t.Fatalf("addr %d wrong after self-heal (err %v)", addr, err)
		}
	}
}

// TestShardedValidateEdges pins the Shards config contract at both
// edges: negative rejected with a message that matches the accepted
// range, zero accepted as the single-shard default.
func TestShardedValidateEdges(t *testing.T) {
	cfg := shardedTestConfig(-1, 16)
	_, err := NewShardedService(cfg)
	if err == nil {
		t.Fatal("accepted Shards = -1")
	}
	if !strings.Contains(err.Error(), ">= 0") {
		t.Fatalf("Shards=-1 error %q does not state the accepted range", err)
	}
	cfg = shardedTestConfig(0, 16)
	svc, err := NewShardedService(cfg)
	if err != nil {
		t.Fatalf("Shards = 0 (single-shard default) rejected: %v", err)
	}
	defer svc.Close()
	if got := svc.Shards(); got != 1 {
		t.Fatalf("Shards()=%d under the zero default, want 1", got)
	}
	ctx := context.Background()
	if err := svc.Write(ctx, 3, payload32(9)); err != nil {
		t.Fatal(err)
	}
	if got, err := svc.Read(ctx, 3); err != nil || !bytes.Equal(got, payload32(9)) {
		t.Fatalf("single-shard default fleet does not serve (err %v)", err)
	}
}

// TestRestartShardDuringBatch races RestartShard against in-flight
// cross-shard batches: every batch either fully succeeds or fails with
// a shard-attributed error (ErrClosed from the restarting incarnation
// or ErrShardDown), never corrupts, and the fleet ends healthy. Runs
// under -race via make race.
func TestRestartShardDuringBatch(t *testing.T) {
	const shards, blocks = 3, 24
	svc, err := NewShardedService(shardedTestConfig(shards, blocks))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	for addr := uint64(0); addr < blocks; addr++ {
		if err := svc.Write(ctx, addr, payload32(byte(addr))); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var bad atomic.Value
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				base := uint64((i + c*5) % (blocks - 2*shards))
				ops := []BatchOp{
					{Addr: base},
					{Addr: base + 1, Write: true, Data: payload32(byte(base + 1))},
					{Addr: base + uint64(shards)},
					{Addr: base + 2*uint64(shards), Write: true, Data: payload32(byte(base + 2*uint64(shards)))},
				}
				_, err := svc.Batch(ctx, ops)
				if err != nil && !errors.Is(err, ErrClosed) && !errors.Is(err, ErrShardDown) {
					bad.Store(fmt.Errorf("batch client %d: %w", c, err))
					return
				}
			}
		}(c)
	}
	for round := 0; round < 20; round++ {
		if err := svc.RestartShard(round % shards); err != nil && !errors.Is(err, ErrClosed) {
			t.Fatalf("restart round %d: %v", round, err)
		}
	}
	close(stop)
	wg.Wait()
	if err, ok := bad.Load().(error); ok && err != nil {
		t.Fatal(err)
	}
	// Every address still reads as its last acked value (writes always
	// rewrite addr's canonical payload, so any outcome is consistent).
	for addr := uint64(0); addr < blocks; addr++ {
		got, err := svc.Read(ctx, addr)
		if err != nil {
			t.Fatalf("read %d after restart storm: %v", addr, err)
		}
		if !bytes.Equal(got, payload32(byte(addr))) {
			t.Fatalf("addr %d corrupted by restart storm", addr)
		}
	}
}

// TestConcurrentRestartSameShard: two RestartShard calls on the SAME
// shard must serialize (per-shard restart lock), both succeed, and the
// shard serves afterwards. Runs under -race via make race.
func TestConcurrentRestartSameShard(t *testing.T) {
	const shards, blocks = 3, 24
	svc, err := NewShardedService(shardedTestConfig(shards, blocks))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	for addr := uint64(0); addr < blocks; addr++ {
		if err := svc.Write(ctx, addr, payload32(byte(addr))); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 10; round++ {
		var wg sync.WaitGroup
		errs := make([]error, 2)
		for k := 0; k < 2; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				errs[k] = svc.RestartShard(1)
			}(k)
		}
		wg.Wait()
		for k, err := range errs {
			if err != nil {
				t.Fatalf("round %d caller %d: %v", round, k, err)
			}
		}
	}
	for addr := uint64(0); addr < blocks; addr++ {
		got, err := svc.Read(ctx, addr)
		if err != nil || !bytes.Equal(got, payload32(byte(addr))) {
			t.Fatalf("addr %d wrong after concurrent restarts (err %v)", addr, err)
		}
	}
}
