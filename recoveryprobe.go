package forkoram

import (
	"context"
	"fmt"
	"time"

	"forkoram/internal/faults"
)

// RecoveryLoopStats measures the supervised heal path end to end: it
// builds a Service whose journal holds a replay suffix, then repeatedly
// poisons the device and times the supervisor's restore-and-replay
// cycle. heals is the number of timed recoveries (heals <= 0 picks a
// default). Returned rates characterize recovery latency for the perf
// record: full heals per second, and journal records replayed per second
// while healing (the paper-relevant cost — every replayed op is a full
// ORAM access).
func RecoveryLoopStats(heals int) (healsPerSec, replayOpsPerSec float64, err error) {
	if heals <= 0 {
		heals = 24
	}
	const suffix = 48 // journal records replayed per heal
	cfg := ServiceConfig{
		Device: DeviceConfig{
			Blocks:    128,
			BlockSize: 64,
			QueueSize: 8,
			Seed:      0xbe41,
			Variant:   Fork,
			Retries:   -1, // first fault poisons: the heal path, not the retry path
			Faults:    &faults.Config{Seed: 0x5eed},
		},
		CheckpointEvery: 1 << 30, // keep the suffix in the journal
		MaxRecoveries:   1 << 30, // the probe poisons on purpose, forever
		sleep:           func(time.Duration) {},
	}
	svc, err := NewService(cfg)
	if err != nil {
		return 0, 0, err
	}
	defer svc.Close()
	ctx := context.Background()
	for i := 0; i < suffix; i++ {
		if err := svc.Write(ctx, uint64(i%int(cfg.Device.Blocks)), chaosPayload(cfg.Device.BlockSize, 0xbe41, uint64(i)+1)); err != nil {
			return 0, 0, fmt.Errorf("forkoram: recovery probe warmup: %w", err)
		}
	}
	before := svc.Stats()
	start := time.Now()
	for i := 0; i < heals; i++ {
		// Force the next bucket read to fail: with retries disabled the
		// device poisons and the supervisor heals inline.
		svc.dev.inj.Force(faults.TransientRead)
		if _, err := svc.Read(ctx, uint64(i%int(cfg.Device.Blocks))); err != nil {
			return 0, 0, fmt.Errorf("forkoram: recovery probe heal %d: %w", i, err)
		}
	}
	elapsed := time.Since(start)
	after := svc.Stats()
	if got := after.Recoveries - before.Recoveries; got != uint64(heals) {
		return 0, 0, fmt.Errorf("forkoram: recovery probe: %d recoveries, want %d", got, heals)
	}
	sec := elapsed.Seconds()
	if sec <= 0 {
		return 0, 0, fmt.Errorf("forkoram: recovery probe: zero elapsed time")
	}
	replayed := after.ReplayedOps - before.ReplayedOps
	return float64(heals) / sec, float64(replayed) / sec, nil
}
