package main

import (
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	forkoram "forkoram"
	"forkoram/internal/rng"
	"forkoram/internal/storage"
	"forkoram/internal/tree"
)

// runScrub is the one-shot offline scrub entry point. With an image path
// it audits an existing disk bucket store and prints per-level corruption
// counts (exit 1 when any frame is corrupt). Without one it runs a
// self-checking demo: build a disk-backed device, push traffic, corrupt a
// handful of frames on the medium out-of-band, and verify the scrub
// detects every one of them.
func runScrub(image, keyHex string, seed uint64) {
	if image == "" {
		runScrubDemo(seed)
		return
	}
	var key []byte
	if keyHex != "" {
		var err error
		if key, err = hex.DecodeString(keyHex); err != nil {
			fatalf("scrub: bad -scrub-key: %v", err)
		}
	}
	disk, err := storage.OpenDiskImage(image, key)
	if err != nil {
		fatalf("scrub: open %s: %v", image, err)
	}
	defer disk.Close()
	st, bad := disk.ScrubAll(keyHex != "")
	printScrub(disk, st, bad)
	if st.Corrupt() > 0 {
		os.Exit(1)
	}
}

// printScrub reports one offline scrub pass: image shape, audit totals,
// and the per-level corruption histogram with the damaged coordinates.
func printScrub(disk *storage.Disk, st storage.ScrubStats, bad []tree.Node) {
	tr := disk.Tree()
	fmt.Printf("scrub: %s\n", disk.Path())
	fmt.Printf("  layout: %d levels, %d buckets (Z=%d, %dB payload), epoch %d\n",
		tr.Levels(), tr.Nodes(), disk.Geometry().Z, disk.Geometry().PayloadSize, disk.Epoch())
	fmt.Printf("  audited %d frames: %d torn, %d undecodable\n", st.Frames, st.Torn, st.Undecodable)
	if st.Corrupt() == 0 {
		fmt.Printf("  ok: image is clean\n")
		return
	}
	fmt.Printf("  corrupt frames by level:\n")
	for l, c := range st.PerLevelCorrupt {
		if c == 0 {
			continue
		}
		fmt.Printf("    level %2d: %d of %d buckets\n", l, c, tr.LevelNodes(uint(l)))
	}
	show := bad
	const maxShow = 16
	if len(show) > maxShow {
		show = show[:maxShow]
	}
	fmt.Printf("  damaged buckets:")
	for _, n := range show {
		fmt.Printf(" %d(L%d)", n, tr.Level(n))
	}
	if len(bad) > len(show) {
		fmt.Printf(" … +%d more", len(bad)-len(show))
	}
	fmt.Println()
}

// runScrubDemo builds a disk-backed device in a temp dir, runs traffic,
// flips bytes in a spread of written frames directly in the backing
// file, and checks the scrub finds exactly those frames.
func runScrubDemo(seed uint64) {
	dir, err := os.MkdirTemp("", "forksim-scrub")
	if err != nil {
		fatalf("scrub demo: %v", err)
	}
	defer os.RemoveAll(dir)
	cfg := forkoram.DeviceConfig{Blocks: 256, BlockSize: 64, Seed: seed, Variant: forkoram.Fork}
	disk, err := forkoram.NewDiskMedium(cfg, filepath.Join(dir, "buckets.oram"))
	if err != nil {
		fatalf("scrub demo: %v", err)
	}
	defer disk.Close()
	cfg.Storage.Medium = disk
	dev, err := forkoram.NewDevice(cfg)
	if err != nil {
		fatalf("scrub demo: %v", err)
	}
	wl := rng.New(rng.SeedAt(seed, 3))
	data := make([]byte, 64)
	for i := 0; i < 1000; i++ {
		for j := range data {
			data[j] = byte(wl.Uint64n(256))
		}
		if err := dev.Write(wl.Uint64n(256), data); err != nil {
			fatalf("scrub demo: write %d: %v", i, err)
		}
	}
	if err := disk.Sync(); err != nil {
		fatalf("scrub demo: %v", err)
	}

	// The adversary: flip one byte in every 7th written frame, straight
	// into the backing file.
	f, err := os.OpenFile(disk.Path(), os.O_RDWR, 0)
	if err != nil {
		fatalf("scrub demo: %v", err)
	}
	injected := map[tree.Node]bool{}
	for n := tree.Node(0); n < disk.Tree().Nodes(); n++ {
		if disk.Ciphertext(n) == nil || n%7 != 0 {
			continue
		}
		off, size := disk.FrameSpan(n)
		pos := off + int64(size)/2
		b := make([]byte, 1)
		if _, err := f.ReadAt(b, pos); err != nil {
			fatalf("scrub demo: %v", err)
		}
		b[0] ^= 0xFF
		if _, err := f.WriteAt(b, pos); err != nil {
			fatalf("scrub demo: %v", err)
		}
		injected[n] = true
	}
	f.Close()
	if len(injected) == 0 {
		fatalf("scrub demo: traffic left no written frames to corrupt")
	}

	st, bad := disk.ScrubAll(true)
	printScrub(disk, st, bad)
	missed := 0
	for n := range injected {
		found := false
		for _, b := range bad {
			if b == n {
				found = true
				break
			}
		}
		if !found {
			missed++
		}
	}
	fmt.Printf("  demo: injected %d corruptions, detected %d, missed %d\n",
		len(injected), len(bad), missed)
	if missed > 0 || len(bad) != len(injected) {
		fmt.Println("  FAIL: scrub did not detect exactly the injected set")
		os.Exit(1)
	}
	fmt.Println("  ok: 100% of injected corruptions detected")
}
