// Command forksim runs one full-system simulation and prints its metrics.
//
// Examples:
//
//	forksim -scheme forkpath -mix Mix3
//	forksim -scheme traditional -workloads mcf,lbm,bwaves,libquantum
//	forksim -scheme forkpath -cache mac -cache-bytes 1048576 -queue 64
//	forksim -scheme insecure -mix Mix1 -requests 5000
//
// With -faults, forksim instead runs a deterministic chaos campaign
// against the fault-tolerant Device (transient faults, crash/restore,
// optionally medium corruption) and exits non-zero on any violation:
//
//	forksim -faults -seed 1 -fault-schedules 1000
//	forksim -faults -fault-corruption -fault-rate 0.006
//
// With -crash, forksim runs the crash-at-every-point campaign against
// the supervised Service (process kills between journal append and
// apply, around checkpoints, mid-restore) and exits non-zero if any
// acknowledged write is lost or any read is silently wrong:
//
//	forksim -crash -seed 1 -crash-schedules 1000
//
// With -crash-shards, the same campaign runs against a ShardedService
// fleet: kills land in individual shard supervisors, healthy siblings
// are probed for reads and writes while a shard is down, and the dead
// shard is restarted from its surviving per-shard stores:
//
//	forksim -crash-shards -seed 1 -crash-schedules 1000 -shards 3
//
// With -crash-reshard, the campaign targets an ONLINE reshard: every
// schedule splits the fleet (odd schedules then merge back) while a
// client workload runs, the router is killed at every migration phase
// (policy append, mid-stream, watermark advance, cutover commit,
// post-cutover truncate), the fleet is rebuilt from its surviving
// journals, and the migration resumed — exiting non-zero if any
// acknowledged write is lost or any read is silently wrong:
//
//	forksim -crash-reshard -seed 1 -crash-schedules 1000 -shards 2 -add-shards 2
//
// With -recover, forksim runs a self-healing demo: a Service under
// continuous fault injection with device retries disabled, so every
// fault poisons the device and the supervisor heals it live. It prints
// the recovery and replay counters and exits non-zero if any
// acknowledged write is lost.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	forkoram "forkoram"
	"forkoram/internal/cpu"
	"forkoram/internal/faults"
	"forkoram/internal/prof"
	"forkoram/internal/rng"
	"forkoram/internal/workload"
)

func main() {
	var (
		scheme     = flag.String("scheme", "forkpath", "insecure | traditional | forkpath")
		mix        = flag.String("mix", "", "Table 2 mix name (Mix1..Mix10)")
		workloads  = flag.String("workloads", "", "comma-separated benchmark names, one per core")
		multi      = flag.String("parsec", "", "multithreaded PARSEC-like workload name")
		cores      = flag.Int("cores", 4, "core count")
		inorder    = flag.Bool("inorder", false, "in-order cores (default out-of-order)")
		requests   = flag.Uint64("requests", 5000, "post-L1 accesses per core")
		dataBlocks = flag.Uint64("data-blocks", 1<<22, "data ORAM size in 64B blocks")
		queue      = flag.Int("queue", 64, "label queue size")
		cacheKind  = flag.String("cache", "none", "none | treetop | mac")
		cacheBytes = flag.Int("cache-bytes", 1<<20, "on-chip bucket cache capacity")
		channels   = flag.Int("channels", 2, "DRAM channels")
		flat       = flag.Bool("flat-layout", false, "use the flat DRAM layout (ablation)")
		noReplace  = flag.Bool("no-dummy-replace", false, "disable dummy request replacing")
		superBlock = flag.Int("superblock", 0, "static super-block size (0/1 = off, power of two)")
		bgEvict    = flag.Int("bg-evict", 0, "background-eviction stash threshold (0 = off)")
		periodic   = flag.Float64("periodic-ns", 0, "fixed issue interval in ns (0 = on-demand)")
		seed       = flag.Uint64("seed", 1, "random seed")

		chaos           = flag.Bool("faults", false, "run the fault-injection chaos campaign instead of a simulation")
		chaosSchedules  = flag.Int("fault-schedules", 1000, "chaos: independent fault schedules")
		chaosOps        = flag.Int("fault-ops", 400, "chaos: device operations per schedule")
		chaosRate       = flag.Float64("fault-rate", 0.004, "chaos: total fault probability per bucket operation")
		chaosCorruption = flag.Bool("fault-corruption", false, "chaos: include medium-corrupting faults (bit flips, torn writes, stale replays)")

		crash          = flag.Bool("crash", false, "run the crash-at-every-point campaign against the supervised Service")
		crashSchedules = flag.Int("crash-schedules", 1000, "crash: independent crash schedules (each runs both variants)")
		crashDisk      = flag.Bool("disk", false, "crash: run every schedule over the durable disk bucket store (kills mid-bucket-write and mid-scrub included)")

		scrub      = flag.Bool("scrub", false, "one-shot scrub over a disk bucket image (-scrub-image), or a self-checking corruption demo without one")
		scrubImage = flag.String("scrub-image", "", "scrub: path of the disk bucket store to audit")
		scrubKey   = flag.String("scrub-key", "", "scrub: hex bucket key; empty audits frames only (epoch + CRC, no decrypt)")

		crashShards = flag.Bool("crash-shards", false, "run the per-shard crash campaign against a ShardedService fleet")
		shards      = flag.Int("shards", 3, "crash-shards: fleet width / crash-reshard: starting width")

		crashReshard = flag.Bool("crash-reshard", false, "run the mid-migration crash campaign against an online reshard")
		addShards    = flag.Int("add-shards", 2, "crash-reshard: shards added by the split (odd schedules merge back)")

		recoverDemo = flag.Bool("recover", false, "run the supervised self-healing demo (faults injected, supervisor heals live)")
		recoverOps  = flag.Int("recover-ops", 2000, "recover: client operations to drive through the healing service")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopCPU, err := prof.StartCPU(*cpuProfile)
	if err != nil {
		fatalf("%v", err)
	}
	defer stopCPU()
	defer func() {
		if err := prof.WriteHeap(*memProfile); err != nil {
			fmt.Fprintf(os.Stderr, "forksim: %v\n", err)
		}
	}()

	if *chaos {
		runChaos(forkoram.ChaosConfig{
			Seed:       *seed,
			Schedules:  *chaosSchedules,
			Ops:        *chaosOps,
			FaultRate:  *chaosRate,
			Corruption: *chaosCorruption,
		})
		return
	}
	if *crash {
		runCrash(forkoram.CrashChaosConfig{
			Seed:      *seed,
			Schedules: *crashSchedules,
			Faults:    true,
			Disk:      *crashDisk,
		})
		return
	}
	if *scrub {
		runScrub(*scrubImage, *scrubKey, *seed)
		return
	}
	if *crashShards {
		runShardedCrash(forkoram.ShardedCrashChaosConfig{
			Seed:      *seed,
			Schedules: *crashSchedules,
			Shards:    *shards,
			Faults:    true,
		})
		return
	}
	if *crashReshard {
		runReshardCrash(forkoram.ReshardChaosConfig{
			Seed:      *seed,
			Schedules: *crashSchedules,
			Shards:    *shards,
			AddShards: *addShards,
		})
		return
	}
	if *recoverDemo {
		runRecoverDemo(*seed, *recoverOps)
		return
	}

	var sch forkoram.Scheme
	switch *scheme {
	case "insecure":
		sch = forkoram.SchemeInsecure
	case "traditional":
		sch = forkoram.SchemeTraditional
	case "forkpath":
		sch = forkoram.SchemeForkPath
	default:
		fatalf("unknown scheme %q", *scheme)
	}

	cfg := forkoram.DefaultSimConfig(sch)
	cfg.Cores = *cores
	cfg.RequestsPerCore = *requests
	cfg.DataBlocks = *dataBlocks
	cfg.OnChipEntries = 1 << 12
	cfg.QueueSize = *queue
	cfg.Channels = *channels
	cfg.FlatLayout = *flat
	cfg.DummyReplaceEnabled = !*noReplace
	cfg.SuperBlock = *superBlock
	cfg.BackgroundEvict = *bgEvict
	cfg.PeriodicIntervalNS = *periodic
	cfg.Seed = *seed
	if *inorder {
		cfg.CoreModel = cpu.InOrder
	}
	switch *cacheKind {
	case "none":
		cfg.Cache = forkoram.SimCacheNone
	case "treetop":
		cfg.Cache = forkoram.SimCacheTreetop
		cfg.CacheBytes = *cacheBytes
	case "mac":
		cfg.Cache = forkoram.SimCacheMAC
		cfg.CacheBytes = *cacheBytes
	default:
		fatalf("unknown cache kind %q", *cacheKind)
	}

	switch {
	case *multi != "":
		cfg.Multithreaded = true
		cfg.Workloads = []string{*multi}
	case *workloads != "":
		cfg.Workloads = strings.Split(*workloads, ",")
	case *mix != "":
		found := false
		for _, m := range workload.Mixes() {
			if m.Name == *mix {
				cfg.Workloads = m.Members[:]
				found = true
			}
		}
		if !found {
			fatalf("unknown mix %q", *mix)
		}
	}
	if !cfg.Multithreaded && len(cfg.Workloads) != cfg.Cores {
		// Repeat or trim to match core count.
		ws := make([]string, cfg.Cores)
		for i := range ws {
			ws[i] = cfg.Workloads[i%len(cfg.Workloads)]
		}
		cfg.Workloads = ws
	}

	res, err := forkoram.RunSimulation(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	printResult(cfg, res)
}

func printResult(cfg forkoram.SimConfig, r forkoram.SimResult) {
	fmt.Printf("scheme            %s\n", r.Scheme)
	fmt.Printf("workloads         %s\n", strings.Join(cfg.Workloads, ","))
	fmt.Printf("execution time    %.3f ms\n", r.ExecNS/1e6)
	fmt.Printf("demand requests   %d (LLC miss rate %.3f)\n", r.DemandRequests, r.LLCMissRate)
	fmt.Printf("ORAM latency      %.0f ns (mean, per data request)\n", r.MeanORAMLatencyNS)
	if r.Scheme != forkoram.SchemeInsecure {
		fmt.Printf("ORAM accesses     %d real + %d dummy (+%d stash-served)\n",
			r.RealAccesses, r.DummyAccesses, r.StashServed)
		fmt.Printf("avg path length   %.2f buckets per phase\n", r.AvgPathBuckets)
		fmt.Printf("DRAM time/access  %.0f ns\n", r.MeanAccessDRAMNS)
		fmt.Printf("stash             mean %.1f, max %d, overflow rate %.5f\n",
			r.Stash.MeanOccupancy, r.Stash.MaxOccupancy, r.Stash.OverflowRate)
	}
	fmt.Printf("DRAM              %d reads, %d writes, %d activations, row hit rate %.3f\n",
		r.DRAM.Reads, r.DRAM.Writes, r.DRAM.Activations,
		float64(r.DRAM.RowHits)/maxf(float64(r.DRAM.RowHits+r.DRAM.RowMisses), 1))
	fmt.Printf("energy            %.3f mJ (DRAM dyn %.3f + background %.3f + controller %.3f)\n",
		r.Energy.TotalMJ(), r.Energy.DRAMDynamicMJ, r.Energy.DRAMBackgroundMJ, r.Energy.ControllerMJ)
	if r.Truncated {
		fmt.Println("WARNING: run truncated by the access safety cap")
	}
}

func runChaos(cfg forkoram.ChaosConfig) {
	rep := forkoram.RunChaos(cfg)
	fmt.Print(rep.String())
	if !rep.Ok() {
		os.Exit(1)
	}
}

func runCrash(cfg forkoram.CrashChaosConfig) {
	rep := forkoram.RunCrashChaos(cfg)
	fmt.Print(rep.String())
	if !rep.Ok() {
		os.Exit(1)
	}
}

func runShardedCrash(cfg forkoram.ShardedCrashChaosConfig) {
	rep := forkoram.RunShardedCrashChaos(cfg)
	fmt.Print(rep.String())
	if !rep.Ok() {
		os.Exit(1)
	}
}

func runReshardCrash(cfg forkoram.ReshardChaosConfig) {
	rep := forkoram.RunReshardCrashChaos(cfg)
	fmt.Print(rep.String())
	if !rep.Ok() {
		os.Exit(1)
	}
}

// runRecoverDemo drives a workload through a Service whose device
// suffers continuous transient faults with retries disabled, so every
// fault fail-stops the device and the supervisor heals it inline. The
// client never sees an error; the demo verifies read-your-writes across
// every heal and prints the supervisor's counters.
func runRecoverDemo(seed uint64, ops int) {
	// Rate and cadence are balanced so the journal suffix replayed per
	// heal stays short enough to complete under continuing faults, and
	// checkpoints (which reset the consecutive-recovery budget) land
	// often enough that the budget tracks incidents, not lifetime.
	p := 0.004 / 3
	svc, err := forkoram.NewService(forkoram.ServiceConfig{
		Device: forkoram.DeviceConfig{
			Blocks:    128,
			BlockSize: 64,
			QueueSize: 8,
			Seed:      seed,
			Variant:   forkoram.Fork,
			Retries:   -1,
			Faults: &faults.Config{
				Seed:           rng.SeedAt(seed, 1),
				PTransientRead: p, PTransientWrite: p, PDroppedWrite: p,
			},
		},
		CheckpointEvery: 16,
		MaxRecoveries:   64,
	})
	if err != nil {
		fatalf("recover demo: %v", err)
	}
	ctx := context.Background()
	wl := rng.New(rng.SeedAt(seed, 2))
	oracle := make(map[uint64][]byte)
	lost := 0
	for i := 0; i < ops; i++ {
		addr := wl.Uint64n(128)
		if wl.Float64() < 0.5 {
			data := make([]byte, 64)
			for j := range data {
				data[j] = byte(wl.Uint64n(256))
			}
			if err := svc.Write(ctx, addr, data); err != nil {
				fatalf("recover demo: write %d: %v", i, err)
			}
			oracle[addr] = data
		} else {
			got, err := svc.Read(ctx, addr)
			if err != nil {
				fatalf("recover demo: read %d: %v", i, err)
			}
			want := oracle[addr]
			if want == nil {
				want = make([]byte, 64)
			}
			if !bytes.Equal(got, want) {
				lost++
			}
		}
	}
	st := svc.Stats()
	if err := svc.Close(); err != nil {
		fatalf("recover demo: close: %v", err)
	}
	fmt.Printf("recover demo: %d ops against a continuously faulting device (state %v)\n", ops, st.State)
	fmt.Printf("  supervisor: %d recoveries (%d failed attempts), %d journal records replayed\n",
		st.Recoveries, st.FailedRecoveries, st.ReplayedOps)
	fmt.Printf("  durability: %d checkpoints, %d journal records, %d lost acknowledged writes\n",
		st.Checkpoints, st.WALRecords, lost)
	if lost > 0 {
		os.Exit(1)
	}
	fmt.Printf("  ok: every fault healed in place, no client-visible failures\n")
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "forksim: "+format+"\n", args...)
	os.Exit(1)
}
