// Command orambench regenerates the paper's evaluation: every figure of
// §5 plus the design-choice ablations, printed as text tables.
//
// Examples:
//
//	orambench                      # all experiments at reduced scale
//	orambench -experiment fig12    # one figure
//	orambench -mixes 4 -requests 1500   # faster sweep
//	orambench -paper               # Table 1 geometry (slow, memory-hungry)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	forkoram "forkoram"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "one experiment name (default: all)")
		mixes      = flag.Int("mixes", 0, "limit to the first N Table 2 mixes (0 = all)")
		requests   = flag.Uint64("requests", 0, "post-L1 accesses per core (0 = default)")
		dataBlocks = flag.Uint64("data-blocks", 0, "data ORAM size in 64B blocks (0 = default)")
		seed       = flag.Uint64("seed", 1, "random seed")
		paper      = flag.Bool("paper", false, "full Table 1 geometry (4 GB ORAM; slow)")
		list       = flag.Bool("list", false, "list experiment names")
	)
	flag.Parse()

	if *list {
		for _, e := range forkoram.Experiments() {
			fmt.Println(e)
		}
		return
	}
	o := forkoram.ExperimentOptions{
		DataBlocks:      *dataBlocks,
		RequestsPerCore: *requests,
		Mixes:           *mixes,
		Seed:            *seed,
		PaperScale:      *paper,
	}
	start := time.Now()
	var err error
	if *experiment != "" {
		err = forkoram.RunExperiment(*experiment, o, os.Stdout)
	} else {
		err = forkoram.RunAllExperiments(o, os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "orambench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("done in %s\n", time.Since(start).Round(time.Millisecond))
}
