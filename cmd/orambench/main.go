// Command orambench regenerates the paper's evaluation: every figure of
// §5 plus the design-choice ablations, printed as text tables.
//
// Examples:
//
//	orambench                      # all experiments at reduced scale
//	orambench -experiment fig12    # one figure
//	orambench -mixes 4 -requests 1500   # faster sweep
//	orambench -parallel 4          # four simulations in flight
//	orambench -json                # also write BENCH_<date>.json
//	orambench -paper               # Table 1 geometry (slow, memory-hungry)
//	orambench -svc                 # only the Service group-commit bench
//	orambench -svc -shards 8 -json # sharded fleet bench, recorded to json
//	orambench -svc -pipeline-depth 4    # pipelined device under the svc bench
//	orambench -svc -serve-workers 4     # concurrent serve/evict stage
//	orambench -pipeline-sweep -json     # depth sweep (1,2,4) comparison table
//	orambench -mc-sweep -json           # gomaxprocs × depth × workers baseline
//	orambench -mc-sweep -require-mc     # fail unless GOMAXPROCS>=4 hits 1.3x
//	orambench -xw -json                 # cross-window vs barriered at equal depth/workers
//	orambench -xw -require-mc           # fail unless cross-window beats its barriered twin
//	orambench -reshard -json       # online reshard under concurrent writers
//	orambench -gomaxprocs 8        # pin the Go scheduler width for the run
//	orambench -cpuprofile cpu.out  # profile the run for go tool pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	forkoram "forkoram"
	"forkoram/internal/prof"
)

// benchReport is the perf-trajectory record -json writes: enough to
// compare harness throughput and hot-path cost across commits. Every
// section a partial run might leave unmeasured carries omitempty, so
// writeReport can merge the day's runs instead of zeroing each other.
type benchReport struct {
	Date        string             `json:"date"`
	GoVersion   string             `json:"go_version"`
	GOMAXPROCS  int                `json:"gomaxprocs"`
	Parallel    int                `json:"parallel,omitempty"`
	Experiments []experimentReport `json:"experiments,omitempty"`
	WallSeconds float64            `json:"wall_seconds"`
	SimRuns     uint64             `json:"sim_runs,omitempty"`
	RunsPerSec  float64            `json:"runs_per_sec,omitempty"`
	// Speedup is aggregate simulation busy time / wall time: the
	// effective parallelism the worker pool achieved.
	Speedup float64 `json:"speedup,omitempty"`
	// Fork-engine access-loop microbenchmark (see AccessLoopStats).
	AccessAllocsPerOp float64 `json:"access_allocs_per_op,omitempty"`
	AccessNSPerOp     float64 `json:"access_ns_per_op,omitempty"`
	// Supervised-recovery latency probe (see RecoveryLoopStats): full
	// heals per second, and journal records replayed per second while
	// healing.
	RecoverHealsPerSec     float64 `json:"recover_heals_per_sec,omitempty"`
	RecoverReplayOpsPerSec float64 `json:"recover_replay_ops_per_sec,omitempty"`
	// Service group-commit bench (see RunServiceBench): end-to-end write
	// throughput over file-backed journals with coalescing on vs. pinned
	// to one sync per op, plus latency percentiles and the dispatch-
	// window shape the coalescer achieved. SvcShards is the fleet width
	// the run used (1 = single supervised Service).
	SvcShards             int      `json:"svc_shards,omitempty"`
	SvcOpsPerSec          float64  `json:"svc_ops_per_sec,omitempty"`
	SvcBaselineOpsPerSec  float64  `json:"svc_baseline_ops_per_sec,omitempty"`
	SvcGroupCommitSpeedup float64  `json:"svc_group_commit_speedup,omitempty"`
	SvcP50LatencyNS       int64    `json:"svc_p50_latency_ns,omitempty"`
	SvcP99LatencyNS       int64    `json:"svc_p99_latency_ns,omitempty"`
	WALSyncsPerOp         float64  `json:"wal_syncs_per_op,omitempty"`
	WALSyncsPerOpBaseline float64  `json:"wal_syncs_per_op_baseline,omitempty"`
	SvcMeanGroupSize      float64  `json:"svc_mean_group_size,omitempty"`
	SvcGroupSizeHist      []uint64 `json:"svc_group_size_hist,omitempty"`
	// Staged intra-shard pipeline (see DeviceConfig.PipelineDepth and
	// RunPipelineSweep): the depth the headline svc_pipeline_* numbers
	// were measured at, its throughput and speedup over the depth-1
	// serial run, and the stage counters — windows run, paths prefetched,
	// refills retired by the writeback worker, and per-stage stall time.
	SvcPipelineDepth           int     `json:"svc_pipeline_depth,omitempty"`
	SvcPipelineOpsPerSec       float64 `json:"svc_pipeline_ops_per_sec,omitempty"`
	SvcPipelineSpeedup         float64 `json:"svc_pipeline_speedup,omitempty"`
	SvcPipelineWindows         uint64  `json:"svc_pipeline_windows,omitempty"`
	SvcPipelinePrefetches      uint64  `json:"svc_pipeline_prefetches,omitempty"`
	SvcPipelineWritebacks      uint64  `json:"svc_pipeline_writebacks,omitempty"`
	SvcPipelineFetchWaitNS     uint64  `json:"svc_pipeline_fetch_wait_ns,omitempty"`
	SvcPipelineEvictWaitNS     uint64  `json:"svc_pipeline_evict_wait_ns,omitempty"`
	SvcPipelineWritebackWaitNS uint64  `json:"svc_pipeline_writeback_wait_ns,omitempty"`
	// SvcPipelineSweep holds the full per-depth table when -pipeline-sweep
	// ran (depth, throughput, latency, stall telemetry per entry).
	SvcPipelineSweep []forkoram.PipelineSweepRun `json:"svc_pipeline_sweep,omitempty"`
	// Concurrent serve/evict stage and multi-core baseline (see
	// DeviceConfig.ServeWorkers and RunMCSweep): the serve-worker count
	// behind the headline svc_pipeline_* numbers, plus the full
	// gomaxprocs × depth × workers grid with per-entry GOMAXPROCS/NumCPU
	// stamps so single-core runs cannot masquerade as multi-core wins.
	SvcServeWorkers      int                   `json:"svc_serve_workers,omitempty"`
	SvcMCNumCPU          int                   `json:"svc_mc_num_cpu,omitempty"`
	SvcMCRemoteLatencyNS int64                 `json:"svc_mc_remote_latency_ns,omitempty"`
	SvcMCBestSpeedup     float64               `json:"svc_mc_best_speedup,omitempty"`
	SvcMCBestGomaxprocs  int                   `json:"svc_mc_best_gomaxprocs,omitempty"`
	SvcMCBestDepth       int                   `json:"svc_mc_best_depth,omitempty"`
	SvcMCBestWorkers     int                   `json:"svc_mc_best_workers,omitempty"`
	SvcMCRuns            []forkoram.MCSweepRun `json:"svc_mc_runs,omitempty"`
	// Cross-window pipelining sweep (see ServiceConfig.CrossWindow and
	// RunXWSweep): the same workload at equal depth and serve-workers,
	// once barriered at every window seam and once with the persistent
	// pipeline plus overlapped group fsync. The headline ops/sec pair is
	// the best cell's; the full per-cell table (with per-entry
	// GOMAXPROCS/NumCPU stamps) rides in svc_xw_runs.
	SvcXWNumCPU           int                   `json:"svc_xw_num_cpu,omitempty"`
	SvcXWRemoteLatencyNS  int64                 `json:"svc_xw_remote_latency_ns,omitempty"`
	SvcXWBestSpeedup      float64               `json:"svc_xw_best_speedup,omitempty"`
	SvcXWBestGomaxprocs   int                   `json:"svc_xw_best_gomaxprocs,omitempty"`
	SvcXWBestDepth        int                   `json:"svc_xw_best_depth,omitempty"`
	SvcXWBestWorkers      int                   `json:"svc_xw_best_workers,omitempty"`
	SvcXWOpsPerSec        float64               `json:"svc_xw_ops_per_sec,omitempty"`
	SvcXWBarrierOpsPerSec float64               `json:"svc_xw_barrier_ops_per_sec,omitempty"`
	SvcXWRuns             []forkoram.XWSweepRun `json:"svc_xw_runs,omitempty"`
	// Online reshard bench (see RunReshardBench): one timed split over
	// file-backed journals — migration copy throughput, journaled chunk
	// count, summed write-barrier stall, and what concurrent client
	// writers still pushed through the dual-routed front door.
	SvcReshardFromShards      int     `json:"svc_reshard_from_shards,omitempty"`
	SvcReshardToShards        int     `json:"svc_reshard_to_shards,omitempty"`
	SvcReshardBlocks          uint64  `json:"svc_reshard_blocks,omitempty"`
	SvcReshardElapsedNS       int64   `json:"svc_reshard_elapsed_ns,omitempty"`
	SvcReshardBlocksPerSec    float64 `json:"svc_reshard_blocks_per_sec,omitempty"`
	SvcReshardChunks          uint64  `json:"svc_reshard_chunks,omitempty"`
	SvcReshardStallNS         uint64  `json:"svc_reshard_stall_ns,omitempty"`
	SvcReshardEpoch           uint64  `json:"svc_reshard_epoch,omitempty"`
	SvcReshardClientOpsPerSec float64 `json:"svc_reshard_client_ops_per_sec,omitempty"`
	SvcReshardClientP99NS     int64   `json:"svc_reshard_client_p99_ns,omitempty"`
	// Storage tier bench (see RunTierBench): the same mixed workload
	// over the in-memory medium, the durable disk store (with and
	// without the write-through RAM tier), and the simulated remote.
	// Slowdowns are relative to the mem run; the remote counters show
	// the injected transients the retry layer absorbed invisibly.
	SvcMemOpsPerSec      float64 `json:"svc_mem_ops_per_sec,omitempty"`
	SvcDiskOpsPerSec     float64 `json:"svc_disk_ops_per_sec,omitempty"`
	SvcDiskSlowdown      float64 `json:"svc_disk_slowdown,omitempty"`
	SvcDiskP99LatencyNS  int64   `json:"svc_disk_p99_latency_ns,omitempty"`
	SvcDiskTierOpsPerSec float64 `json:"svc_disk_tier_ops_per_sec,omitempty"`
	SvcDiskTierHitRate   float64 `json:"svc_disk_tier_hit_rate,omitempty"`
	SvcRemoteOpsPerSec   float64 `json:"svc_remote_ops_per_sec,omitempty"`
	SvcRemoteSlowdown    float64 `json:"svc_remote_slowdown,omitempty"`
	SvcRemoteFaults      uint64  `json:"svc_remote_faults,omitempty"`
	SvcRemoteRecovered   uint64  `json:"svc_remote_recovered,omitempty"`
	// SvcTierRuns holds the full per-configuration table.
	SvcTierRuns []forkoram.TierBenchRun `json:"svc_tier_runs,omitempty"`
}

type experimentReport struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	OK      bool    `json:"ok"`
	Error   string  `json:"error,omitempty"`
}

// fillSvc copies a Service bench result into the report's svc_* fields.
func (r *benchReport) fillSvc(res forkoram.ServiceBenchResult) {
	r.SvcShards = res.Shards
	r.SvcOpsPerSec = res.Grouped.OpsPerSec
	r.SvcBaselineOpsPerSec = res.Baseline.OpsPerSec
	r.SvcGroupCommitSpeedup = res.Speedup
	r.SvcP50LatencyNS = res.Grouped.P50Latency.Nanoseconds()
	r.SvcP99LatencyNS = res.Grouped.P99Latency.Nanoseconds()
	r.WALSyncsPerOp = res.Grouped.WALSyncsPerOp
	r.WALSyncsPerOpBaseline = res.Baseline.WALSyncsPerOp
	r.SvcMeanGroupSize = res.Grouped.MeanGroupSize
	r.SvcGroupSizeHist = append([]uint64(nil), res.Grouped.GroupSizes[:]...)
}

// fillPipelineRun copies one pipelined run's stage counters into the
// report's svc_pipeline_* fields.
func (r *benchReport) fillPipelineRun(depth int, run forkoram.ServiceBenchRun, speedup float64) {
	r.SvcPipelineDepth = depth
	r.SvcPipelineOpsPerSec = run.OpsPerSec
	r.SvcPipelineSpeedup = speedup
	p := run.Pipeline
	r.SvcPipelineWindows = p.Windows
	r.SvcPipelinePrefetches = p.Prefetches
	r.SvcPipelineWritebacks = p.Writebacks
	r.SvcPipelineFetchWaitNS = p.FetchWaitNs
	r.SvcPipelineEvictWaitNS = p.EvictWaitNs
	r.SvcPipelineWritebackWaitNS = p.WritebackWaitNs
}

// fillPipelineSweep records the whole sweep and promotes its deepest
// entry to the headline svc_pipeline_* fields.
func (r *benchReport) fillPipelineSweep(res forkoram.PipelineSweepResult) {
	r.SvcPipelineSweep = res.Depths
	if n := len(res.Depths); n > 0 {
		last := res.Depths[n-1]
		r.fillPipelineRun(last.Depth, last.Run, last.Speedup)
	}
}

// fillMCSweep records the multi-core serve-stage sweep and promotes
// its best concurrent cell measured at GOMAXPROCS >= 4 to the headline
// svc_pipeline_* fields (the speedup is against that scheduler width's
// own depth-1 serial baseline).
func (r *benchReport) fillMCSweep(res forkoram.MCSweepResult) {
	r.SvcMCNumCPU = res.NumCPU
	r.SvcMCRemoteLatencyNS = res.RemoteLatencyNs
	r.SvcMCBestSpeedup = res.BestSpeedup
	r.SvcMCBestGomaxprocs = res.BestGomaxprocs
	r.SvcMCBestDepth = res.BestDepth
	r.SvcMCBestWorkers = res.BestWorkers
	r.SvcMCRuns = res.Runs
	var best *forkoram.MCSweepRun
	for i := range res.Runs {
		run := &res.Runs[i]
		if run.Workers < 2 || run.Gomaxprocs < 4 {
			continue
		}
		if best == nil || run.Speedup > best.Speedup {
			best = run
		}
	}
	if best != nil {
		r.SvcServeWorkers = best.Workers
		r.fillPipelineRun(best.Depth, best.Run, best.Speedup)
	}
}

// fillXWSweep records the cross-window sweep and promotes its best
// cell's throughput pair to the headline svc_xw_* fields.
func (r *benchReport) fillXWSweep(res forkoram.XWSweepResult) {
	r.SvcXWNumCPU = res.NumCPU
	r.SvcXWRemoteLatencyNS = res.RemoteLatencyNs
	r.SvcXWBestSpeedup = res.BestSpeedup
	r.SvcXWBestGomaxprocs = res.BestGomaxprocs
	r.SvcXWBestDepth = res.BestDepth
	r.SvcXWBestWorkers = res.BestWorkers
	r.SvcXWRuns = res.Runs
	for i := range res.Runs {
		run := &res.Runs[i]
		if run.Depth == res.BestDepth && run.Workers == res.BestWorkers {
			r.SvcXWOpsPerSec = run.CrossWindow.OpsPerSec
			r.SvcXWBarrierOpsPerSec = run.Barriered.OpsPerSec
			break
		}
	}
}

// requireXWPass extends the honesty guard to the cross-window sweep:
// at least one cell must show the cross-window run beating its own
// barriered twin — same depth, same serve-workers, same journal
// medium, same payloads; the seam barrier is the only difference, so
// anything <= 1.0x means the persistent pipeline bought nothing.
func requireXWPass(res forkoram.XWSweepResult) error {
	for _, run := range res.Runs {
		if run.Speedup > 1.0 {
			return nil
		}
	}
	return fmt.Errorf("no cross-window cell beat its barriered twin (best %.2fx at gomaxprocs=%d depth=%d workers=%d)",
		res.BestSpeedup, res.BestGomaxprocs, res.BestDepth, res.BestWorkers)
}

// requireMCPass enforces the multi-core honesty bar: some concurrent
// cell (workers >= 2) measured at GOMAXPROCS >= 4 must clear 1.3x over
// that scheduler width's depth-1 serial baseline. A sweep produced
// entirely at GOMAXPROCS=1 therefore cannot claim a multi-core
// speedup, whatever its numbers say.
func requireMCPass(res forkoram.MCSweepResult) error {
	for _, run := range res.Runs {
		if run.Workers >= 2 && run.Gomaxprocs >= 4 && run.Speedup >= 1.3 {
			return nil
		}
	}
	return fmt.Errorf("no concurrent cell at GOMAXPROCS >= 4 reached 1.3x (best %.2fx at gomaxprocs=%d depth=%d workers=%d)",
		res.BestSpeedup, res.BestGomaxprocs, res.BestDepth, res.BestWorkers)
}

// fillTiers copies a tier bench result into the report's svc_disk_* /
// svc_remote_* fields.
func (r *benchReport) fillTiers(res forkoram.TierBenchResult) {
	r.SvcTierRuns = res.Runs
	if run := res.Run("mem"); run != nil {
		r.SvcMemOpsPerSec = run.OpsPerSec
	}
	if run := res.Run("disk"); run != nil {
		r.SvcDiskOpsPerSec = run.OpsPerSec
		r.SvcDiskSlowdown = run.Slowdown
		r.SvcDiskP99LatencyNS = run.P99Latency.Nanoseconds()
	}
	if run := res.Run("disk+tier"); run != nil {
		r.SvcDiskTierOpsPerSec = run.OpsPerSec
		if tot := run.Storage.Tier.ReadHits + run.Storage.Tier.ReadMisses; tot > 0 {
			r.SvcDiskTierHitRate = float64(run.Storage.Tier.ReadHits) / float64(tot)
		}
	}
	if run := res.Run("remote"); run != nil {
		r.SvcRemoteOpsPerSec = run.OpsPerSec
		r.SvcRemoteSlowdown = run.Slowdown
		r.SvcRemoteFaults = run.Storage.Remote.TransientReads + run.Storage.Remote.TransientWrites
		r.SvcRemoteRecovered = run.Storage.Retry.Recovered
	}
}

// fillReshard copies a reshard bench result into the report's
// svc_reshard_* fields.
func (r *benchReport) fillReshard(res forkoram.ReshardBenchResult) {
	r.SvcReshardFromShards = res.FromShards
	r.SvcReshardToShards = res.ToShards
	r.SvcReshardBlocks = res.Blocks
	r.SvcReshardElapsedNS = res.Elapsed.Nanoseconds()
	r.SvcReshardBlocksPerSec = res.BlocksPerSec
	r.SvcReshardChunks = res.Chunks
	r.SvcReshardStallNS = res.StallNs
	r.SvcReshardEpoch = res.Epoch
	r.SvcReshardClientOpsPerSec = res.ClientOpsPerSec
	r.SvcReshardClientP99NS = res.ClientP99.Nanoseconds()
}

// writeReport writes the BENCH_<date>.json perf record, merging into
// any record already written for the day: optional sections carry
// omitempty, so a partial run (-svc, -tiers, -mc-sweep, ...) emits only
// the fields it measured and leaves the rest of the day's record
// standing instead of overwriting it with zeroes.
func writeReport(rep benchReport) {
	path := fmt.Sprintf("BENCH_%s.json", rep.Date)
	merged := make(map[string]json.RawMessage)
	if prev, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(prev, &merged); err != nil {
			fmt.Fprintf(os.Stderr, "orambench: %s exists but is not valid json (%v); rewriting\n", path, err)
			merged = make(map[string]json.RawMessage)
		}
	}
	data, err := json.Marshal(rep)
	if err == nil {
		var cur map[string]json.RawMessage
		if err = json.Unmarshal(data, &cur); err == nil {
			for k, v := range cur {
				merged[k] = v
			}
			data, err = json.MarshalIndent(merged, "", "  ")
		}
	}
	if err == nil {
		err = os.WriteFile(path, append(data, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "orambench: writing %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", path)
}

func main() {
	var (
		experiment = flag.String("experiment", "", "one experiment name (default: all)")
		mixes      = flag.Int("mixes", 0, "limit to the first N Table 2 mixes (0 = all)")
		requests   = flag.Uint64("requests", 0, "post-L1 accesses per core (0 = default)")
		dataBlocks = flag.Uint64("data-blocks", 0, "data ORAM size in 64B blocks (0 = default)")
		seed       = flag.Uint64("seed", 1, "random seed")
		parallel   = flag.Int("parallel", 0, "simulations in flight (0 = one per CPU)")
		jsonOut    = flag.Bool("json", false, "write a BENCH_<date>.json perf record")
		paper      = flag.Bool("paper", false, "full Table 1 geometry (4 GB ORAM; slow)")
		list       = flag.Bool("list", false, "list experiment names")
		svcOnly    = flag.Bool("svc", false, "run only the Service group-commit benchmark")
		svcOps     = flag.Int("svc-ops", 2000, "Service bench: acknowledged writes per run")
		shards     = flag.Int("shards", 1, "Service bench: ShardedService fleet width (1 = plain Service)")
		pipeDepth  = flag.Int("pipeline-depth", 0, "Service bench: staged-pipeline depth per device (0/1 = serial engine)")
		serveWork  = flag.Int("serve-workers", 0, "Service bench: concurrent serve/evict workers per device (0/1 = serial serve stage)")
		wbQueue    = flag.Int("wb-queue", 0, "Service bench: writeback queue depth for the concurrent serve stage (0 = depth-1)")
		pipeSweep  = flag.Bool("pipeline-sweep", false, "run only the pipeline depth sweep (depths 1, 2, 4)")
		mcSweep    = flag.Bool("mc-sweep", false, "run only the multi-core serve-stage sweep (gomaxprocs × depth × workers)")
		xwSweep    = flag.Bool("xw", false, "run only the cross-window sweep (barriered vs cross-window at equal depth/workers)")
		mcLatency  = flag.Duration("mc-latency", 0, "mc/xw sweep: simulated remote round-trip per bulk call (0 = 200µs default)")
		requireMC  = flag.Bool("require-mc", false, "mc sweep: exit nonzero unless a GOMAXPROCS>=4 concurrent cell clears 1.3x; with -xw, unless a cross-window cell beats its barriered twin")
		reshard    = flag.Bool("reshard", false, "run only the online reshard benchmark")
		tiers      = flag.Bool("tiers", false, "run only the storage tier benchmark (mem vs disk vs remote)")
		tierOps    = flag.Int("tier-ops", 500, "tier bench: acknowledged mixed ops per configuration (remote runs sleep real time)")
		newShards  = flag.Int("new-shards", 4, "reshard bench: recipient fleet width")
		maxProcs   = flag.Int("gomaxprocs", 0, "set runtime.GOMAXPROCS for the whole run (0 = leave default)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *list {
		for _, e := range forkoram.Experiments() {
			fmt.Println(e)
		}
		return
	}
	if *maxProcs > 0 {
		runtime.GOMAXPROCS(*maxProcs)
	}
	stopCPU, err := prof.StartCPU(*cpuProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "orambench: %v\n", err)
		os.Exit(1)
	}
	defer stopCPU()
	defer func() {
		if err := prof.WriteHeap(*memProfile); err != nil {
			fmt.Fprintf(os.Stderr, "orambench: %v\n", err)
		}
	}()

	svcCfg := forkoram.ServiceBenchConfig{
		Ops:            *svcOps,
		Shards:         *shards,
		Seed:           *seed,
		PipelineDepth:  *pipeDepth,
		ServeWorkers:   *serveWork,
		WritebackQueue: *wbQueue,
	}
	reshardCfg := forkoram.ReshardBenchConfig{Seed: *seed, NewShards: *newShards}
	if *shards > 1 {
		reshardCfg.Shards = *shards
	}
	tierCfg := forkoram.TierBenchConfig{Ops: *tierOps, Seed: *seed}
	if *tiers {
		start := time.Now()
		res, err := forkoram.RunTierBench(tierCfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "orambench: tier bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(res.String())
		if *jsonOut {
			rep := benchReport{
				Date:        time.Now().Format("2006-01-02"),
				GoVersion:   runtime.Version(),
				GOMAXPROCS:  runtime.GOMAXPROCS(0),
				WallSeconds: time.Since(start).Seconds(),
			}
			rep.fillTiers(res)
			writeReport(rep)
		}
		return
	}
	if *reshard {
		start := time.Now()
		res, err := forkoram.RunReshardBench(reshardCfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "orambench: reshard bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(res.String())
		if *jsonOut {
			rep := benchReport{
				Date:        time.Now().Format("2006-01-02"),
				GoVersion:   runtime.Version(),
				GOMAXPROCS:  runtime.GOMAXPROCS(0),
				WallSeconds: time.Since(start).Seconds(),
			}
			rep.fillReshard(res)
			writeReport(rep)
		}
		return
	}
	if *xwSweep {
		start := time.Now()
		xwCfg := svcCfg
		xwCfg.RemoteLatency = *mcLatency
		res, err := forkoram.RunXWSweep(xwCfg, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "orambench: xw sweep: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(res.String())
		if *jsonOut {
			rep := benchReport{
				Date:        time.Now().Format("2006-01-02"),
				GoVersion:   runtime.Version(),
				GOMAXPROCS:  runtime.GOMAXPROCS(0),
				WallSeconds: time.Since(start).Seconds(),
			}
			rep.fillXWSweep(res)
			writeReport(rep)
		}
		if *requireMC {
			if err := requireXWPass(res); err != nil {
				fmt.Fprintf(os.Stderr, "orambench: xw guard: %v\n", err)
				os.Exit(1)
			}
			fmt.Println("xw guard: ok")
		}
		return
	}
	if *mcSweep {
		start := time.Now()
		mcCfg := svcCfg
		mcCfg.RemoteLatency = *mcLatency
		res, err := forkoram.RunMCSweep(mcCfg, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "orambench: mc sweep: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(res.String())
		if *jsonOut {
			rep := benchReport{
				Date:        time.Now().Format("2006-01-02"),
				GoVersion:   runtime.Version(),
				GOMAXPROCS:  runtime.GOMAXPROCS(0),
				WallSeconds: time.Since(start).Seconds(),
			}
			rep.fillMCSweep(res)
			writeReport(rep)
		}
		if *requireMC {
			if err := requireMCPass(res); err != nil {
				fmt.Fprintf(os.Stderr, "orambench: mc guard: %v\n", err)
				os.Exit(1)
			}
			fmt.Println("mc guard: ok")
		}
		return
	}
	if *pipeSweep {
		start := time.Now()
		res, err := forkoram.RunPipelineSweep(svcCfg, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "orambench: pipeline sweep: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(res.String())
		if *jsonOut {
			rep := benchReport{
				Date:        time.Now().Format("2006-01-02"),
				GoVersion:   runtime.Version(),
				GOMAXPROCS:  runtime.GOMAXPROCS(0),
				WallSeconds: time.Since(start).Seconds(),
			}
			rep.fillPipelineSweep(res)
			writeReport(rep)
		}
		return
	}
	if *svcOnly {
		start := time.Now()
		res, err := forkoram.RunServiceBench(svcCfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "orambench: svc bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(res.String())
		if *jsonOut {
			rep := benchReport{
				Date:        time.Now().Format("2006-01-02"),
				GoVersion:   runtime.Version(),
				GOMAXPROCS:  runtime.GOMAXPROCS(0),
				WallSeconds: time.Since(start).Seconds(),
			}
			rep.fillSvc(res)
			if *pipeDepth > 1 {
				// No depth-1 baseline in this mode; speedup comes from
				// -pipeline-sweep or -mc-sweep, which measure both.
				rep.fillPipelineRun(*pipeDepth, res.Grouped, 0)
				rep.SvcServeWorkers = *serveWork
			}
			writeReport(rep)
		}
		return
	}
	o := forkoram.ExperimentOptions{
		DataBlocks:      *dataBlocks,
		RequestsPerCore: *requests,
		Mixes:           *mixes,
		Seed:            *seed,
		Parallel:        *parallel,
		PaperScale:      *paper,
	}
	names := forkoram.Experiments()
	if *experiment != "" {
		names = []string{*experiment}
	}
	forkoram.ResetExperimentStats()
	start := time.Now()
	var reports []experimentReport
	var failed []string
	for _, name := range names {
		t0 := time.Now()
		err := forkoram.RunExperiment(name, o, os.Stdout)
		r := experimentReport{Name: name, Seconds: time.Since(t0).Seconds(), OK: err == nil}
		if err != nil {
			r.Error = err.Error()
			failed = append(failed, name)
			fmt.Fprintf(os.Stderr, "orambench: %s: %v\n", name, err)
		}
		reports = append(reports, r)
	}
	wall := time.Since(start)
	runs, busy := forkoram.ExperimentStats()
	speedup := 0.0
	if wall > 0 {
		speedup = busy.Seconds() / wall.Seconds()
	}
	runsPerSec := 0.0
	if wall > 0 {
		runsPerSec = float64(runs) / wall.Seconds()
	}
	fmt.Printf("done in %s: %d simulations (%.1f/s), parallel speedup %.2fx (busy %s)\n",
		wall.Round(time.Millisecond), runs, runsPerSec, speedup, busy.Round(time.Millisecond))

	if *jsonOut {
		allocs, nsOp, err := forkoram.AccessLoopStats(0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "orambench: access-loop probe: %v\n", err)
		}
		heals, replay, err := forkoram.RecoveryLoopStats(0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "orambench: recovery probe: %v\n", err)
		}
		svcRes, err := forkoram.RunServiceBench(svcCfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "orambench: svc bench: %v\n", err)
		} else {
			fmt.Print(svcRes.String())
		}
		reshardRes, reshardErr := forkoram.RunReshardBench(reshardCfg)
		if reshardErr != nil {
			fmt.Fprintf(os.Stderr, "orambench: reshard bench: %v\n", reshardErr)
		} else {
			fmt.Print(reshardRes.String())
		}
		tierRes, tierErr := forkoram.RunTierBench(tierCfg)
		if tierErr != nil {
			fmt.Fprintf(os.Stderr, "orambench: tier bench: %v\n", tierErr)
		} else {
			fmt.Print(tierRes.String())
		}
		rep := benchReport{
			Date:              time.Now().Format("2006-01-02"),
			GoVersion:         runtime.Version(),
			GOMAXPROCS:        runtime.GOMAXPROCS(0),
			Parallel:          *parallel,
			Experiments:       reports,
			WallSeconds:       wall.Seconds(),
			SimRuns:           runs,
			RunsPerSec:        runsPerSec,
			Speedup:           speedup,
			AccessAllocsPerOp: allocs,
			AccessNSPerOp:     nsOp,

			RecoverHealsPerSec:     heals,
			RecoverReplayOpsPerSec: replay,
		}
		rep.fillSvc(svcRes)
		if reshardErr == nil {
			rep.fillReshard(reshardRes)
		}
		if tierErr == nil {
			rep.fillTiers(tierRes)
		}
		if *pipeDepth > 1 {
			rep.fillPipelineRun(*pipeDepth, svcRes.Grouped, 0)
			rep.SvcServeWorkers = *serveWork
		}
		writeReport(rep)
	}

	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "orambench: %d experiment(s) failed: %v\n", len(failed), failed)
		os.Exit(1)
	}
}
