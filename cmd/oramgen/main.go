// Command oramgen generates synthetic memory-request traces from the
// built-in SPEC-2006-like and PARSEC-like benchmark profiles, in the text
// format consumed by examples/tracesim (one request per line:
// "<gapCycles> <blockAddr> <R|W>").
//
// Examples:
//
//	oramgen -list
//	oramgen -benchmark mcf -n 100000 > mcf.trace
//	oramgen -benchmark canneal -n 50000 -seed 3 -o canneal.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"forkoram/internal/rng"
	"forkoram/internal/workload"
)

func main() {
	var (
		name = flag.String("benchmark", "", "profile name (see -list)")
		n    = flag.Int("n", 100000, "number of requests")
		seed = flag.Uint64("seed", 1, "random seed")
		out  = flag.String("o", "", "output file (default stdout)")
		list = flag.Bool("list", false, "list available benchmark profiles")
	)
	flag.Parse()

	if *list {
		for _, g := range []workload.Group{workload.LG, workload.HG, workload.Parsec} {
			fmt.Printf("%s:\n", g)
			for _, b := range workload.Names(g) {
				p, _ := workload.Lookup(b)
				fmt.Printf("  %-14s gap=%5.0f cycles  hot=%.2f  footprint=%d blocks\n",
					b, p.GapMeanCycles, p.HotFrac, p.FootprintBlks)
			}
		}
		return
	}
	if *name == "" {
		fatalf("missing -benchmark (try -list)")
	}
	p, err := workload.Lookup(*name)
	if err != nil {
		fatalf("%v", err)
	}
	gen, err := workload.NewGenerator(p, rng.New(*seed), 0, 0, 0)
	if err != nil {
		fatalf("%v", err)
	}
	reqs := make([]workload.Request, *n)
	for i := range reqs {
		reqs[i] = gen.Next()
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	if err := workload.WriteTrace(w, reqs); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "oramgen: "+format+"\n", args...)
	os.Exit(1)
}
