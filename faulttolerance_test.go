package forkoram

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"forkoram/internal/faults"
	"forkoram/internal/storage"
)

func payload(size int, fill byte) []byte {
	return bytes.Repeat([]byte{fill}, size)
}

// --- Batch error paths (validation vs execution) ---

func TestBatchValidationRejectsWithoutStateChange(t *testing.T) {
	for _, variant := range []Variant{Baseline, Fork} {
		d, err := NewDevice(DeviceConfig{Blocks: 32, BlockSize: 16, Seed: 5, Variant: variant})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Write(1, payload(16, 0xAB)); err != nil {
			t.Fatal(err)
		}
		before := d.Stats()

		// Out-of-range address mid-batch.
		_, err = d.Batch([]BatchOp{
			{Addr: 0, Write: true, Data: payload(16, 1)},
			{Addr: 99, Write: true, Data: payload(16, 2)},
		})
		if err == nil || !strings.Contains(err.Error(), "batch op 1") {
			t.Fatalf("variant %d: out-of-range batch: %v", variant, err)
		}
		// Wrong payload size mid-batch.
		_, err = d.Batch([]BatchOp{
			{Addr: 0, Write: true, Data: payload(16, 1)},
			{Addr: 2, Write: true, Data: payload(7, 2)},
		})
		if err == nil || !strings.Contains(err.Error(), "batch op 1") {
			t.Fatalf("variant %d: short-payload batch: %v", variant, err)
		}

		// Validation failures must not poison, count, or touch state.
		if d.Poisoned() != nil {
			t.Fatalf("variant %d: validation failure poisoned the device", variant)
		}
		after := d.Stats()
		if after.Reads != before.Reads || after.Writes != before.Writes ||
			after.BucketReads != before.BucketReads || after.BucketWrites != before.BucketWrites {
			t.Fatalf("variant %d: rejected batch changed stats: %+v -> %+v", variant, before, after)
		}
		got, err := d.Read(1)
		if err != nil || got[0] != 0xAB {
			t.Fatalf("variant %d: device unusable after rejected batch: %v %v", variant, got, err)
		}
		if got, err := d.Read(0); err != nil || got[0] != 0 {
			t.Fatalf("variant %d: rejected batch applied op 0: %v %v", variant, got, err)
		}
	}
}

// exhaust forces enough transient faults to blow the default retry
// budget on the next bucket operation.
func exhaust(d *Device, read bool) {
	kind := faults.TransientRead
	if !read {
		kind = faults.TransientWrite
	}
	for i := 0; i < 1+4; i++ { // first attempt + DefaultRetries, with margin
		d.inj.Force(kind)
	}
}

func TestBatchBackendErrorPoisons(t *testing.T) {
	for _, variant := range []Variant{Baseline, Fork} {
		d, err := NewDevice(DeviceConfig{
			Blocks: 32, BlockSize: 16, Seed: 5, Variant: variant,
			Faults: &faults.Config{Seed: 1}, // zero rates: only forced faults fire
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Write(1, payload(16, 0xAB)); err != nil {
			t.Fatal(err)
		}
		exhaust(d, true)
		_, err = d.Batch([]BatchOp{
			{Addr: 1},
			{Addr: 2, Write: true, Data: payload(16, 2)},
		})
		if !errors.Is(err, storage.ErrTransient) {
			t.Fatalf("variant %d: batch under exhausted retries: %v", variant, err)
		}
		if d.Poisoned() == nil {
			t.Fatalf("variant %d: execution failure did not poison", variant)
		}
		// Every subsequent operation refuses with ErrPoisoned.
		if _, err := d.Read(1); !errors.Is(err, ErrPoisoned) {
			t.Fatalf("variant %d: Read on poisoned device: %v", variant, err)
		}
		if err := d.Write(1, payload(16, 1)); !errors.Is(err, ErrPoisoned) {
			t.Fatalf("variant %d: Write on poisoned device: %v", variant, err)
		}
		if _, err := d.Batch([]BatchOp{{Addr: 1}}); !errors.Is(err, ErrPoisoned) {
			t.Fatalf("variant %d: Batch on poisoned device: %v", variant, err)
		}
		if _, err := d.Snapshot(); !errors.Is(err, ErrPoisoned) {
			t.Fatalf("variant %d: Snapshot on poisoned device: %v", variant, err)
		}
		// The original cause stays inspectable through the wrapper.
		var pe *PoisonedError
		if _, err := d.Read(1); !errors.As(err, &pe) || !errors.Is(pe.Cause, storage.ErrTransient) {
			t.Fatalf("variant %d: poisoned error lost its cause: %v", variant, err)
		}
	}
}

// --- Stats admission counting (only admitted ops count) ---

func TestStatsCountOnlyAdmittedOps(t *testing.T) {
	d, err := NewDevice(DeviceConfig{Blocks: 8, BlockSize: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Write(0, payload(16, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Read(0); err != nil {
		t.Fatal(err)
	}
	// Rejected by validation: none of these may count.
	d.Read(99)
	d.Write(99, payload(16, 1))
	d.Write(0, payload(3, 1))
	st := d.Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("validation-rejected ops were counted: %+v", st)
	}
}

// --- Adversary trace equivalence under recovered faults ---

// TestTraceEquivalenceUnderRecoveredFaults runs the same workload on a
// fault-free device and on one riddled with transient faults that all
// recover within the retry budget. The Observer traces (revealed labels
// and bucket sequences) must be identical: retries re-request the same
// bucket and the injector draws from its own rng stream, so fault
// handling leaks nothing.
func TestTraceEquivalenceUnderRecoveredFaults(t *testing.T) {
	for _, variant := range []Variant{Baseline, Fork} {
		trace := func(fc *faults.Config) (string, *Device) {
			var b strings.Builder
			cfg := DeviceConfig{
				Blocks: 48, BlockSize: 16, Seed: 11, Variant: variant, Faults: fc,
				Observer: func(label uint64, dummy bool, r, w []uint64) {
					fmt.Fprintf(&b, "%d %v %v %v\n", label, dummy, r, w)
				},
			}
			d, err := NewDevice(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 200; i++ {
				addr := uint64(i*7) % 48
				if i%2 == 0 {
					if err := d.Write(addr, payload(16, byte(i))); err != nil {
						t.Fatalf("variant %d write %d: %v", variant, i, err)
					}
				} else if _, err := d.Read(addr); err != nil {
					t.Fatalf("variant %d read %d: %v", variant, i, err)
				}
			}
			return b.String(), d
		}
		clean, _ := trace(nil)
		faulty, fd := trace(&faults.Config{
			Seed:           21,
			PTransientRead: 0.02, PTransientWrite: 0.02, PDroppedWrite: 0.02,
		})
		if fc, _ := fd.FaultCounts(); fc.Total() == 0 {
			t.Fatalf("variant %d: no faults injected, test proves nothing", variant)
		}
		if rs := fd.RetryStats(); rs.Recovered == 0 {
			t.Fatalf("variant %d: no recoveries recorded", variant)
		}
		if fd.Poisoned() != nil {
			t.Fatalf("variant %d: faulty run poisoned (raise retry budget or lower rate): %v",
				variant, fd.Poisoned())
		}
		if clean != faulty {
			t.Fatalf("variant %d: adversary traces diverged under recovered faults", variant)
		}
	}
}
