package forkoram

import (
	"fmt"

	"forkoram/internal/block"
	"forkoram/internal/fork"
	"forkoram/internal/pathoram"
	"forkoram/internal/posmap"
	"forkoram/internal/recursion"
	"forkoram/internal/rng"
	"forkoram/internal/stash"
	"forkoram/internal/storage"
	"forkoram/internal/tree"
)

// Variant selects the controller algorithm of a Device.
type Variant int

// Device variants.
const (
	// Baseline is classic Path ORAM: every access reads and rewrites one
	// full root-to-leaf path.
	Baseline Variant = iota
	// Fork is the paper's Fork Path engine: consecutive accesses merge
	// their overlapping path segments, a label queue schedules pending
	// requests by overlap degree, and pending dummies are replaced by
	// late-arriving real requests.
	Fork
)

// DeviceConfig configures an oblivious block store.
type DeviceConfig struct {
	// Blocks is the number of addressable blocks (addresses 0..Blocks-1).
	Blocks uint64
	// BlockSize is the payload size in bytes of each block (default 64).
	BlockSize int
	// Z is the bucket capacity (default 4).
	Z int
	// StashCapacity is the on-chip stash size in blocks (default 200).
	// Exceeding it is recorded in Stats, not fatal.
	StashCapacity int
	// QueueSize is the Fork variant's label queue size (default 8).
	// Large queues pay off under Batch or pipelined use, where many real
	// requests pend; a synchronous caller issuing one blocking operation
	// at a time waits O(QueueSize) accesses for its request to win the
	// overlap competition against queue dummies, so keep it small there.
	QueueSize int
	// Key is the 16-byte AES key sealing buckets. Nil derives an
	// all-zero key (fine for experiments; supply your own otherwise).
	Key []byte
	// Seed makes the label randomness reproducible. Production use wants
	// a random seed; experiments want a fixed one.
	Seed uint64
	// Variant selects Baseline or Fork.
	Variant Variant
	// Integrity enables Merkle-tree verification over the stored bucket
	// ciphertexts (orthogonal to ORAM per the paper's §2.2, combinable
	// with it): every bucket read is verified against an on-chip root,
	// detecting tampering and replay of stale ciphertexts.
	Integrity bool
	// Observer, when set, receives the bus-visible trace of every ORAM
	// tree traversal — exactly what an adversary probing the memory bus
	// sees (revealed leaf label plus bucket read/write sequences), and
	// additionally the dummy flag (NOT adversary-visible; provided for
	// analysis). Used by security tests and examples/adversary.
	Observer func(label uint64, dummy bool, readBuckets, writeBuckets []uint64)
}

func (c DeviceConfig) withDefaults() DeviceConfig {
	if c.BlockSize == 0 {
		c.BlockSize = 64
	}
	if c.Z == 0 {
		c.Z = 4
	}
	if c.StashCapacity == 0 {
		c.StashCapacity = 200
	}
	if c.QueueSize == 0 {
		c.QueueSize = 8
	}
	if c.Key == nil {
		c.Key = make([]byte, 16)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Validate checks the configuration.
func (c DeviceConfig) Validate() error {
	c = c.withDefaults()
	if c.Blocks == 0 {
		return fmt.Errorf("forkoram: Blocks must be positive")
	}
	if c.BlockSize <= 0 || c.Z <= 0 {
		return fmt.Errorf("forkoram: BlockSize and Z must be positive")
	}
	if len(c.Key) != 16 {
		return fmt.Errorf("forkoram: Key must be 16 bytes")
	}
	return nil
}

// DeviceStats summarizes a Device's activity.
type DeviceStats struct {
	Reads         uint64
	Writes        uint64
	RealAccesses  uint64 // ORAM tree traversals serving requests
	DummyAccesses uint64 // Fork variant's inserted dummy traversals
	BucketReads   uint64 // buckets fetched from (encrypted) storage
	BucketWrites  uint64
	Stash         stash.Stats
	// PathLength is the number of buckets on a full path (L+1).
	PathLength uint
}

// Device is an oblivious block store: external observers of its backing
// storage (including anyone who can read the Device's memory traffic)
// learn nothing about which addresses are accessed beyond the total
// request count.
//
// A Device is not safe for concurrent use; wrap it in your own mutex if
// needed (ORAM serializes accesses by construction anyway).
type Device struct {
	cfg      DeviceConfig
	tr       tree.Tree
	store    *storage.Mem
	verifier *storage.Integrity
	ctl      *pathoram.Controller
	pos      *posmap.Map
	eng      *fork.Engine // Fork variant only
	base     *pathoram.ORAM

	nextID uint64
	reads  uint64
	writes uint64
}

// NewDevice creates an oblivious block store holding cfg.Blocks blocks of
// cfg.BlockSize bytes, all initially zero.
func NewDevice(cfg DeviceConfig) (*Device, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Size the tree at ~50% utilization: Z * 2^L >= Blocks.
	_, tr, err := recursion.Plan(recursion.Config{
		DataBlocks:     cfg.Blocks,
		LabelsPerBlock: 2,          // no recursion in the device facade:
		OnChipEntries:  cfg.Blocks, // the whole position map stays on-chip
		Z:              cfg.Z,
		PayloadSize:    cfg.BlockSize,
	})
	if err != nil {
		return nil, err
	}
	store, err := storage.NewMem(tr, block.Geometry{Z: cfg.Z, PayloadSize: cfg.BlockSize}, cfg.Key)
	if err != nil {
		return nil, err
	}
	var backend storage.Backend = store
	var verifier *storage.Integrity
	if cfg.Integrity {
		verifier = storage.NewIntegrity(store, tr)
		backend = verifier
	}
	root := rng.New(cfg.Seed)
	d := &Device{cfg: cfg, tr: tr, store: store, verifier: verifier}
	pcfg := pathoram.Config{Tree: tr, StashCapacity: cfg.StashCapacity, TrackData: true}
	switch cfg.Variant {
	case Baseline:
		d.base, err = pathoram.New(pcfg, backend, root.Split())
		if err != nil {
			return nil, err
		}
		d.ctl = d.base.Controller()
		d.pos = d.base.PositionMap()
	case Fork:
		d.ctl, err = pathoram.NewController(pcfg, backend)
		if err != nil {
			return nil, err
		}
		d.pos = posmap.New(tr, root.Split())
		d.eng, err = fork.NewEngine(fork.Config{
			QueueSize:           cfg.QueueSize,
			AgeThreshold:        16 * cfg.QueueSize,
			MergeEnabled:        true,
			DummyReplaceEnabled: true,
		}, d.ctl, root.Split())
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("forkoram: unknown variant %d", cfg.Variant)
	}
	return d, nil
}

// BlockSize returns the payload size.
func (d *Device) BlockSize() int { return d.cfg.BlockSize }

// Blocks returns the number of addressable blocks.
func (d *Device) Blocks() uint64 { return d.cfg.Blocks }

// Leaves returns the number of leaves of the ORAM tree — the range of
// the labels reported to an Observer. Public information.
func (d *Device) Leaves() uint64 { return d.tr.Leaves() }

// IntegrityRoot returns the current Merkle root over the stored bucket
// ciphertexts. It is only meaningful when the device was created with
// Integrity enabled; ok reports that.
func (d *Device) IntegrityRoot() (root [32]byte, ok bool) {
	if d.verifier == nil {
		return root, false
	}
	return d.verifier.Root(), true
}

// Read returns the contents of the block at addr (zero-filled if never
// written).
func (d *Device) Read(addr uint64) ([]byte, error) {
	d.reads++
	return d.access(pathoram.OpRead, addr, nil)
}

// Write replaces the contents of the block at addr. data must be exactly
// BlockSize bytes.
func (d *Device) Write(addr uint64, data []byte) error {
	if len(data) != d.cfg.BlockSize {
		return fmt.Errorf("forkoram: payload %d bytes, want %d", len(data), d.cfg.BlockSize)
	}
	d.writes++
	_, err := d.access(pathoram.OpWrite, addr, data)
	return err
}

func (d *Device) access(op pathoram.Op, addr uint64, data []byte) ([]byte, error) {
	if addr >= d.cfg.Blocks {
		return nil, fmt.Errorf("forkoram: address %d out of range (blocks=%d)", addr, d.cfg.Blocks)
	}
	if d.base != nil {
		out, acc, err := d.base.Access(op, addr, data)
		if err == nil && d.cfg.Observer != nil && acc.ReadNodes != nil {
			d.cfg.Observer(acc.Label, acc.Dummy, acc.ReadNodes, acc.WriteNodes)
		}
		return out, err
	}
	return d.forkAccess(op, addr, data)
}

// runEngine executes one Fork access, reporting it to the observer.
func (d *Device) runEngine() error {
	a, err := d.eng.Run()
	if err != nil {
		return err
	}
	if d.cfg.Observer != nil {
		d.cfg.Observer(a.Label, a.Dummy(), a.ReadNodes, a.WriteNodes)
	}
	return nil
}

// forkAccess runs one operation through the Fork engine: enqueue the
// request, then run engine accesses until it is served.
func (d *Device) forkAccess(op pathoram.Op, addr uint64, data []byte) ([]byte, error) {
	// Step-1 stash shortcut, valid because the synchronous API guarantees
	// no concurrent in-flight request for the address unless queued.
	if !d.eng.HasAddr(addr) {
		if b, ok := d.ctl.Stash().Get(addr); ok {
			_ = b
			label, _ := d.pos.Lookup(addr)
			return d.ctl.FetchBlock(op, addr, label, data)
		}
	}
	old, _, next := d.pos.Remap(addr)
	d.nextID++
	var out []byte
	served := false
	it := &fork.Item{ID: d.nextID, Addr: addr, OldLabel: old, NewLabel: next}
	it.Serve = func() error {
		o, err := d.ctl.FetchBlock(op, addr, next, data)
		out, served = o, true
		return err
	}
	if !d.eng.Enqueue(it) {
		return nil, fmt.Errorf("forkoram: label queue rejected request (full of reals)")
	}
	// The engine serves by overlap order; with a synchronous caller the
	// item is served within at most QueueSize accesses (aging guards the
	// pathological case).
	for i := 0; i < 32*d.cfg.QueueSize && !served; i++ {
		if err := d.runEngine(); err != nil {
			return nil, err
		}
	}
	if !served {
		return nil, fmt.Errorf("forkoram: request starved (engine bug)")
	}
	return out, nil
}

// Batch executes a set of operations, admitting as many as possible into
// the label queue before draining, so Fork Path's scheduling can reorder
// them for path overlap. Results are positional: for reads, the payload;
// for writes, nil. Operations on the same address keep program order.
func (d *Device) Batch(ops []BatchOp) ([][]byte, error) {
	results := make([][]byte, len(ops))
	if d.base != nil || len(ops) == 0 {
		// Baseline has no scheduling; run sequentially.
		for i, op := range ops {
			var err error
			if op.Write {
				err = d.Write(op.Addr, op.Data)
			} else {
				results[i], err = d.Read(op.Addr)
			}
			if err != nil {
				return nil, err
			}
		}
		return results, nil
	}
	pendingCount := 0
	next := 0
	admit := func() error {
		for next < len(ops) && d.eng.CanEnqueue() {
			i := next
			op := ops[i]
			if op.Addr >= d.cfg.Blocks {
				return fmt.Errorf("forkoram: address %d out of range", op.Addr)
			}
			if op.Write && len(op.Data) != d.cfg.BlockSize {
				return fmt.Errorf("forkoram: op %d payload %d bytes, want %d", i, len(op.Data), d.cfg.BlockSize)
			}
			old, _, nl := d.pos.Remap(op.Addr)
			d.nextID++
			pop := pathoram.OpRead
			if op.Write {
				pop = pathoram.OpWrite
				d.writes++
			} else {
				d.reads++
			}
			data := op.Data
			newLabel := nl
			addr := op.Addr
			it := &fork.Item{ID: d.nextID, Addr: addr, OldLabel: old, NewLabel: newLabel}
			it.Serve = func() error {
				o, err := d.ctl.FetchBlock(pop, addr, newLabel, data)
				if !op.Write {
					results[i] = o
				}
				pendingCount--
				return err
			}
			if !d.eng.Enqueue(it) {
				break
			}
			pendingCount++
			next++
		}
		return nil
	}
	if err := admit(); err != nil {
		return nil, err
	}
	guard := 0
	for pendingCount > 0 || next < len(ops) {
		if err := d.runEngine(); err != nil {
			return nil, err
		}
		if err := admit(); err != nil {
			return nil, err
		}
		if guard++; guard > 64*(len(ops)+d.cfg.QueueSize) {
			return nil, fmt.Errorf("forkoram: batch failed to drain (engine bug)")
		}
	}
	return results, nil
}

// BatchOp is one operation of a Batch.
type BatchOp struct {
	Addr  uint64
	Write bool
	Data  []byte // writes only
}

// Stats returns cumulative device statistics.
func (d *Device) Stats() DeviceStats {
	st := DeviceStats{
		Reads:      d.reads,
		Writes:     d.writes,
		Stash:      d.ctl.Stash().Stats(),
		PathLength: d.tr.Levels(),
	}
	c := d.store.Counters()
	st.BucketReads, st.BucketWrites = c.BucketReads, c.BucketWrites
	if d.eng != nil {
		es := d.eng.Stats()
		st.RealAccesses, st.DummyAccesses = es.RealAccesses, es.DummyAccesses
	} else {
		st.RealAccesses = d.reads + d.writes
	}
	return st
}
