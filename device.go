package forkoram

import (
	"errors"
	"fmt"
	"sync/atomic"

	"forkoram/internal/block"
	"forkoram/internal/faults"
	"forkoram/internal/fork"
	"forkoram/internal/mac"
	"forkoram/internal/pathoram"
	"forkoram/internal/posmap"
	"forkoram/internal/recursion"
	"forkoram/internal/rng"
	"forkoram/internal/stash"
	"forkoram/internal/storage"
	"forkoram/internal/tree"
)

// ErrPoisoned marks a Device that suffered an unrecovered failure:
// a storage error survived the retry budget, or an access died midway
// (position map remapped, request never served). Rather than continue
// from half-applied state — which could silently violate read-your-writes
// or the Path ORAM invariant — the device fail-stops: every subsequent
// operation returns an error wrapping ErrPoisoned (and the original
// cause). Recover by restoring a Snapshot taken before the failure.
var ErrPoisoned = errors.New("forkoram: device poisoned by unrecovered failure")

// ErrConcurrentAccess is returned when two goroutines enter a Device
// operation at the same time. A raw Device is single-goroutine by
// contract (see the Device doc); rather than silently interleave stash
// and position-map updates — which corrupts state in ways no later check
// can untangle — every entry point holds an atomic busy flag and the
// loser fails fast with this error, before any state is touched. The
// rejected operation is not counted in Stats and does not poison the
// device. Use Service for a goroutine-safe front door.
var ErrConcurrentAccess = errors.New("forkoram: concurrent access to Device (single-goroutine contract)")

// ErrTransient and ErrCorrupt re-export the storage error taxonomy so
// consumers outside this module can classify device failures with
// errors.Is: transient faults may succeed on retry (the device already
// retried within its budget before surfacing one), corruption means the
// medium or its integrity check is wrong. See DESIGN.md §8.
var (
	ErrTransient = storage.ErrTransient
	ErrCorrupt   = storage.ErrCorrupt
)

// PoisonedError is the error returned by operations on a poisoned
// Device. It wraps both ErrPoisoned and the original failure, so
// errors.Is(err, ErrPoisoned) and cause inspection both work.
type PoisonedError struct {
	// Cause is the failure that poisoned the device.
	Cause error
}

// Error implements error.
func (e *PoisonedError) Error() string {
	return fmt.Sprintf("forkoram: device poisoned (cause: %v)", e.Cause)
}

// Is reports ErrPoisoned.
func (e *PoisonedError) Is(target error) bool { return target == ErrPoisoned }

// Unwrap exposes the original failure for errors.Is/As dispatch.
func (e *PoisonedError) Unwrap() error { return e.Cause }

// Variant selects the controller algorithm of a Device.
type Variant int

// Device variants.
const (
	// Baseline is classic Path ORAM: every access reads and rewrites one
	// full root-to-leaf path.
	Baseline Variant = iota
	// Fork is the paper's Fork Path engine: consecutive accesses merge
	// their overlapping path segments, a label queue schedules pending
	// requests by overlap degree, and pending dummies are replaced by
	// late-arriving real requests.
	Fork
)

// DeviceConfig configures an oblivious block store.
type DeviceConfig struct {
	// Blocks is the number of addressable blocks (addresses 0..Blocks-1).
	Blocks uint64
	// BlockSize is the payload size in bytes of each block (default 64).
	BlockSize int
	// Z is the bucket capacity (default 4).
	Z int
	// StashCapacity is the on-chip stash size in blocks (default 200).
	// Exceeding it is recorded in Stats, not fatal.
	StashCapacity int
	// QueueSize is the Fork variant's label queue size (default 8).
	// Large queues pay off under Batch or pipelined use, where many real
	// requests pend; a synchronous caller issuing one blocking operation
	// at a time waits O(QueueSize) accesses for its request to win the
	// overlap competition against queue dummies, so keep it small there.
	QueueSize int
	// Key is the 16-byte AES key sealing buckets. Nil derives an
	// all-zero key (fine for experiments; supply your own otherwise).
	Key []byte
	// Seed makes the label randomness reproducible. Production use wants
	// a random seed; experiments want a fixed one.
	Seed uint64
	// Variant selects Baseline or Fork.
	Variant Variant
	// Integrity enables Merkle-tree verification over the stored bucket
	// ciphertexts (orthogonal to ORAM per the paper's §2.2, combinable
	// with it): every bucket read is verified against an on-chip root,
	// detecting tampering and replay of stale ciphertexts.
	Integrity bool
	// Retries bounds the controller's oblivious retry budget for
	// transient storage failures (storage.ErrTransient): up to Retries
	// additional attempts of the same bucket access before the device
	// fail-stops (poisons). 0 means pathoram.DefaultRetries; negative
	// disables retrying. Retries repeat an already-revealed bucket
	// access and are triggered by public storage behaviour, so they do
	// not change the adversary-visible access sequence.
	Retries int
	// Faults, when non-nil, interposes a deterministic fault injector
	// (internal/faults) between the controller and storage: transient
	// errors, dropped/torn writes, ciphertext bit-flips and stale-bucket
	// replays on the configured schedule. Testing and chaos hook; leave
	// nil in production. Corruption faults are reliably detected only
	// with Integrity enabled (payload-only corruption is invisible to
	// the plaintext plausibility checks).
	Faults *faults.Config
	// CryptoWorkers bounds the goroutines decrypting/encrypting bucket
	// ciphertexts when a whole path segment is read or written at once:
	// 0 (the default) means one per available CPU, 1 forces serial
	// crypto. Parallel crypto only engages on the plain medium — the
	// Integrity and Faults decorators pin the per-bucket path, whose
	// retry and verification semantics are defined one bucket at a time.
	// Process-local tuning: not serialized in snapshots, re-applied from
	// the host device on restore.
	CryptoWorkers int
	// PipelineDepth bounds the in-flight accesses of the intra-shard
	// pipeline: during a Batch of more than one operation on the Fork
	// variant over the plain medium, access N's writeback (re-encrypt +
	// WriteBuckets) overlaps access N+1's path prefetch (ReadBuckets +
	// decrypt), with stash mutation and eviction remaining a single
	// serialized stage. Depth <= 1 (the default) is the serial path;
	// depth d allows d-1 writebacks to queue behind the one in flight.
	// The public access sequence is identical at every depth — the
	// schedule is deterministic and prefetch only moves already-public
	// traffic earlier in time. Like CryptoWorkers this is process-local
	// tuning: not serialized in snapshots, re-applied from the host
	// device on restore, and inert under the Integrity or Faults
	// decorators (whose per-bucket semantics pin the serial path).
	PipelineDepth int
	// ServeWorkers sizes the concurrent serve/evict stage of the
	// pipeline (DESIGN.md §15): >= 2 executes independent in-flight
	// accesses' stash phases across that many workers, with
	// dependency-tracked scheduling keeping every dependent pair in
	// program order — results, snapshots, and the public access
	// sequence are identical at every worker count. <= 1 (the default)
	// keeps the single-goroutine serve stage of DESIGN.md §12. Only
	// meaningful with PipelineDepth > 1; process-local tuning like
	// PipelineDepth (not serialized in snapshots, inert under the
	// Integrity or Faults decorators).
	ServeWorkers int
	// WritebackQueue bounds refill jobs queued behind the in-flight
	// writeback(s) of a pipelined batch. 0 (the default) sizes it to
	// PipelineDepth-1, the DESIGN.md §12 sizing; larger values only add
	// slack. Process-local tuning like PipelineDepth.
	WritebackQueue int
	// CrossWindow keeps the pipeline primed across dispatch windows
	// (DESIGN.md §16): the first pipelined Batch opens a persistent
	// stage session and later Batches reuse it, so a new window's
	// fetches overlap the previous window's still-in-flight writebacks
	// (the store-buffer hazard set orders every conflicting pair).
	// Results, snapshots, and the public access sequence are identical
	// with or without it — each Batch still returns only after all its
	// accesses retired in program order; only storage writes straddle
	// the seam. Any serial operation (single Read/Write, Snapshot,
	// scrub) drains and closes the session first. Only meaningful with
	// PipelineDepth > 1; process-local tuning like PipelineDepth (not
	// serialized in snapshots, re-applied from the host device on
	// restore, inert under the Integrity or Faults decorators).
	CrossWindow bool
	// Storage selects and shapes the storage tiers under the controller:
	// a durable disk medium instead of the default in-memory one, a
	// simulated remote tier with latency/transients plus its retry
	// layer, and a write-through RAM tier pinning the treetop. See
	// StorageConfig. Like Observer and Faults, the live handles are
	// process-local: not serialized in snapshots, re-applied from the
	// host device on restore.
	Storage StorageConfig
	// Observer, when set, receives the bus-visible trace of every ORAM
	// tree traversal — exactly what an adversary probing the memory bus
	// sees (revealed leaf label plus bucket read/write sequences), and
	// additionally the dummy flag (NOT adversary-visible; provided for
	// analysis). Used by security tests and examples/adversary.
	//
	// Accesses served entirely from the stash (Step-1 shortcut) generate
	// no memory traffic and are therefore NOT reported: the Observer
	// sees exactly what the bus sees, and a stash hit is invisible on
	// the bus by construction. DeviceStats.RealAccesses counts only
	// tree traversals for the same reason.
	Observer func(label uint64, dummy bool, readBuckets, writeBuckets []uint64)
}

func (c DeviceConfig) withDefaults() DeviceConfig {
	if c.BlockSize == 0 {
		c.BlockSize = 64
	}
	if c.Z == 0 {
		c.Z = 4
	}
	if c.StashCapacity == 0 {
		c.StashCapacity = 200
	}
	if c.QueueSize == 0 {
		c.QueueSize = 8
	}
	if c.Key == nil {
		c.Key = make([]byte, 16)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Validate checks the configuration.
func (c DeviceConfig) Validate() error {
	c = c.withDefaults()
	if c.Blocks == 0 {
		return fmt.Errorf("forkoram: Blocks must be positive")
	}
	if c.BlockSize <= 0 || c.Z <= 0 {
		return fmt.Errorf("forkoram: BlockSize and Z must be positive")
	}
	if len(c.Key) != 16 {
		return fmt.Errorf("forkoram: Key must be 16 bytes")
	}
	return nil
}

// DeviceStats summarizes a Device's activity.
type DeviceStats struct {
	Reads         uint64
	Writes        uint64
	RealAccesses  uint64 // ORAM tree traversals serving requests
	DummyAccesses uint64 // Fork variant's inserted dummy traversals
	BucketReads   uint64 // buckets fetched from (encrypted) storage
	BucketWrites  uint64
	Stash         stash.Stats
	// PathLength is the number of buckets on a full path (L+1).
	PathLength uint
	// Pipeline counts the intra-shard pipeline's work and per-stage
	// stalls (zero unless PipelineDepth > 1 engaged on some batch).
	Pipeline pathoram.PipelineStats
	// Storage reports the storage-tier layers' activity (zero-valued
	// for layers not configured).
	Storage StorageStats
}

// Device is an oblivious block store: external observers of its backing
// storage (including anyone who can read the Device's memory traffic)
// learn nothing about which addresses are accessed beyond the total
// request count.
//
// A Device is not safe for concurrent use: ORAM serializes accesses by
// construction, so its operations are strictly single-goroutine. The
// contract is enforced cheaply — every operation holds an atomic busy
// flag, and a concurrent entry fails fast with ErrConcurrentAccess
// instead of silently corrupting stash or position-map state. Wrap a
// Device in a Service for a goroutine-safe, self-healing front door, or
// in your own mutex if you only need serialization.
type Device struct {
	cfg      DeviceConfig
	tr       tree.Tree
	store    storage.Medium // base medium (Mem or Disk)
	remote   *storage.Remote
	sretry   *storage.Retry
	verifier *storage.Integrity
	tier     *mac.Treetop // write-through RAM tier (nil unless configured)
	inj      *faults.Injector
	ctl      *pathoram.Controller
	pos      *posmap.Map
	eng      *fork.Engine // Fork variant only
	base     *pathoram.ORAM

	nextID   uint64
	reads    uint64
	writes   uint64
	poisoned *PoisonedError

	// scrubCursor is the background scrub walker's position in the node
	// space; scrubStats accumulates what every ScrubSlice found.
	scrubCursor uint64
	scrubStats  storage.ScrubStats

	// midBatchKill, when set, is polled between accesses of a pipelined
	// batch — after access N's refill entered writeback, before access
	// N+1's fetch is consumed. Returning true aborts the batch with
	// errKilled (crash-chaos hook modelling a shard dying mid-window).
	midBatchKill func() bool

	// midServeKill, when set, is polled by the concurrent serve stage's
	// workers before each access's stash phase (so the kill lands while
	// other accesses are genuinely in flight). A non-nil error aborts
	// the batch with it (crash-chaos hook modelling a shard dying
	// mid-serve). Only armed when ServeWorkers >= 2.
	midServeKill func() error

	// sessionOpen marks a persistent cross-window pipeline session
	// (DeviceConfig.CrossWindow): stage workers stay armed between
	// Batches, with the previous window's writebacks possibly still in
	// flight. Serial paths call endSession before touching the
	// controller directly.
	sessionOpen bool

	// busy is the cheap concurrent-misuse guard: CAS-acquired by every
	// public operation, so a second goroutine entering mid-operation gets
	// ErrConcurrentAccess instead of corrupting stash/position-map state.
	busy atomic.Int32
}

// endSession closes a persistent cross-window pipeline session: drain
// the in-flight writebacks, join the stage workers, and surface any
// latched error. Every serial-path entry (single operations,
// snapshots, scrubs) funnels through here before touching controller
// state directly; a non-nil return means evicted blocks were lost and
// the caller must poison.
func (d *Device) endSession() error {
	if !d.sessionOpen {
		return nil
	}
	d.sessionOpen = false
	return d.ctl.StopPipeline()
}

// enter acquires the single-goroutine guard; leave releases it.
func (d *Device) enter() error {
	if !d.busy.CompareAndSwap(0, 1) {
		return ErrConcurrentAccess
	}
	return nil
}

func (d *Device) leave() { d.busy.Store(0) }

// planDeviceTree sizes the device tree for cfg at ~50% utilization:
// Z * 2^L >= Blocks. cfg must already carry its defaults.
func planDeviceTree(cfg DeviceConfig) (tree.Tree, error) {
	_, tr, err := recursion.Plan(recursion.Config{
		DataBlocks:     cfg.Blocks,
		LabelsPerBlock: 2,          // no recursion in the device facade:
		OnChipEntries:  cfg.Blocks, // the whole position map stays on-chip
		Z:              cfg.Z,
		PayloadSize:    cfg.BlockSize,
	})
	return tr, err
}

// NewDiskMedium opens (creating if absent) a durable disk bucket store
// at path, sized and keyed exactly as NewDevice would size a device for
// cfg — ready to hand in via DeviceConfig.Storage.Medium. The caller
// owns the handle: Close it after the device (or service) is done. Like
// a WAL file, one handle is shared across service recovery incarnations.
func NewDiskMedium(cfg DeviceConfig, path string) (*storage.Disk, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tr, err := planDeviceTree(cfg)
	if err != nil {
		return nil, err
	}
	return storage.OpenDisk(path, tr, block.Geometry{Z: cfg.Z, PayloadSize: cfg.BlockSize}, cfg.Key)
}

// NewDevice creates an oblivious block store holding cfg.Blocks blocks of
// cfg.BlockSize bytes, all initially zero.
func NewDevice(cfg DeviceConfig) (*Device, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tr, err := planDeviceTree(cfg)
	if err != nil {
		return nil, err
	}
	geo := block.Geometry{Z: cfg.Z, PayloadSize: cfg.BlockSize}
	var store storage.Medium
	if cfg.Storage.Medium != nil {
		store = cfg.Storage.Medium
		if store.Tree() != tr {
			return nil, fmt.Errorf("forkoram: supplied medium has %v, config wants %v", store.Tree(), tr)
		}
		if store.Geometry() != geo {
			return nil, fmt.Errorf("forkoram: supplied medium has geometry %+v, config wants %+v",
				store.Geometry(), geo)
		}
		// A new device starts from an empty tree; whatever the medium held
		// before (a previous incarnation's frames, including torn ones) is
		// dead state — durability of acknowledged writes flows from the
		// WAL + checkpoint story, which restores the medium image
		// explicitly (RestoreDevice), never from trusting frames in place.
		if err := store.Reset(); err != nil {
			return nil, fmt.Errorf("forkoram: reset supplied medium: %w", err)
		}
	} else {
		store, err = storage.NewMem(tr, geo, cfg.Key)
		if err != nil {
			return nil, err
		}
	}
	var verifier *storage.Integrity
	if cfg.Integrity {
		verifier = storage.NewIntegrity(store, tr)
	}
	return assembleDevice(cfg, tr, store, verifier, rng.New(cfg.Seed))
}

// assembleDevice wires the controller stack over an existing medium and
// (optional) integrity layer — shared by NewDevice and RestoreDevice.
// Stack, bottom to top: base medium → simulated remote tier → retry
// layer → Merkle verifier → write-through RAM tier → fault injector →
// controller. The verifier's hashes are always computed from the raw
// medium (out-of-band maintenance reads pay no remote latency and trip
// no injected faults); its data path is rebased onto whatever stack
// sits below it.
func assembleDevice(cfg DeviceConfig, tr tree.Tree, store storage.Medium,
	verifier *storage.Integrity, root *rng.Source) (*Device, error) {

	store.SetBulkWorkers(cfg.CryptoWorkers)
	if disk, ok := store.(*storage.Disk); ok {
		disk.SetCrashWrite(nil) // hooks do not survive reassembly
	}
	var backend storage.Backend = store
	var remote *storage.Remote
	var sretry *storage.Retry
	if cfg.Storage.Remote != nil {
		remote = storage.NewRemote(store, *cfg.Storage.Remote)
		backend = remote
		rc := storage.RetryConfig{}
		if cfg.Storage.Retry != nil {
			rc = *cfg.Storage.Retry
		}
		// A remote tier always gets the retry front: bulk callers do not
		// retry, so transients must be absorbed (or exhausted into a
		// fail-stop) below the bulk surface.
		sretry = storage.NewRetry(remote, rc)
		backend = sretry
	}
	if verifier != nil {
		verifier.Rebase(backend)
		backend = verifier
	}
	var tier *mac.Treetop
	if cfg.Storage.TierBytes > 0 {
		var err error
		tier, err = mac.NewWriteThroughTreetop(backend, tr, cfg.Storage.TierBytes)
		if err != nil {
			return nil, err
		}
		backend = tier
	}
	var inj *faults.Injector
	if cfg.Faults != nil {
		// The injector sits above the Merkle layer but corrupts the raw
		// medium, so injected corruption is exactly what verification is
		// specified to catch.
		inj = faults.NewInjector(backend, store, *cfg.Faults)
		backend = inj
	}
	d := &Device{cfg: cfg, tr: tr, store: store, remote: remote, sretry: sretry,
		verifier: verifier, tier: tier, inj: inj}
	pcfg := pathoram.Config{Tree: tr, StashCapacity: cfg.StashCapacity, TrackData: true, Retries: cfg.Retries}
	var err error
	switch cfg.Variant {
	case Baseline:
		d.base, err = pathoram.New(pcfg, backend, root.Split())
		if err != nil {
			return nil, err
		}
		d.ctl = d.base.Controller()
		d.pos = d.base.PositionMap()
	case Fork:
		d.ctl, err = pathoram.NewController(pcfg, backend)
		if err != nil {
			return nil, err
		}
		d.pos = posmap.New(tr, root.Split())
		d.eng, err = fork.NewEngine(fork.Config{
			QueueSize:           cfg.QueueSize,
			AgeThreshold:        16 * cfg.QueueSize,
			MergeEnabled:        true,
			DummyReplaceEnabled: true,
		}, d.ctl, root.Split())
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("forkoram: unknown variant %d", cfg.Variant)
	}
	return d, nil
}

// BlockSize returns the payload size.
func (d *Device) BlockSize() int { return d.cfg.BlockSize }

// Blocks returns the number of addressable blocks.
func (d *Device) Blocks() uint64 { return d.cfg.Blocks }

// Leaves returns the number of leaves of the ORAM tree — the range of
// the labels reported to an Observer. Public information.
func (d *Device) Leaves() uint64 { return d.tr.Leaves() }

// IntegrityRoot returns the current Merkle root over the stored bucket
// ciphertexts. It is only meaningful when the device was created with
// Integrity enabled; ok reports that.
func (d *Device) IntegrityRoot() (root [32]byte, ok bool) {
	if d.verifier == nil {
		return root, false
	}
	return d.verifier.Root(), true
}

// Poisoned returns the error that poisoned the device, or nil while it
// is healthy.
func (d *Device) Poisoned() error {
	if d.poisoned == nil {
		return nil
	}
	return d.poisoned
}

// poison records the first unrecovered failure; later operations see
// only the PoisonedError wrapping it.
func (d *Device) poison(cause error) {
	if d.poisoned == nil {
		d.poisoned = &PoisonedError{Cause: cause}
	}
}

// checkAddr validates an address before any state is touched, so
// validation failures neither poison the device nor count in Stats.
func (d *Device) checkAddr(addr uint64) error {
	if addr >= d.cfg.Blocks {
		return fmt.Errorf("forkoram: address %d out of range (blocks=%d)", addr, d.cfg.Blocks)
	}
	return nil
}

// Read returns the contents of the block at addr (zero-filled if never
// written).
func (d *Device) Read(addr uint64) ([]byte, error) {
	if err := d.enter(); err != nil {
		return nil, err
	}
	defer d.leave()
	return d.read(addr)
}

func (d *Device) read(addr uint64) ([]byte, error) {
	if d.poisoned != nil {
		return nil, d.poisoned
	}
	if err := d.checkAddr(addr); err != nil {
		return nil, err
	}
	if err := d.endSession(); err != nil {
		d.poison(err)
		return nil, d.poisoned
	}
	d.reads++
	out, err := d.access(pathoram.OpRead, addr, nil)
	if err != nil {
		d.poison(err)
	}
	return out, err
}

// Write replaces the contents of the block at addr. data must be exactly
// BlockSize bytes.
func (d *Device) Write(addr uint64, data []byte) error {
	if err := d.enter(); err != nil {
		return err
	}
	defer d.leave()
	return d.write(addr, data)
}

func (d *Device) write(addr uint64, data []byte) error {
	if d.poisoned != nil {
		return d.poisoned
	}
	if err := d.checkAddr(addr); err != nil {
		return err
	}
	if len(data) != d.cfg.BlockSize {
		return fmt.Errorf("forkoram: payload %d bytes, want %d", len(data), d.cfg.BlockSize)
	}
	if err := d.endSession(); err != nil {
		d.poison(err)
		return d.poisoned
	}
	d.writes++
	_, err := d.access(pathoram.OpWrite, addr, data)
	if err != nil {
		d.poison(err)
	}
	return err
}

// access runs one admitted (validated, counted) operation. Any error it
// returns left the device in a half-applied state — the caller poisons.
func (d *Device) access(op pathoram.Op, addr uint64, data []byte) ([]byte, error) {
	if d.base != nil {
		out, acc, err := d.base.Access(op, addr, data)
		if err == nil && d.cfg.Observer != nil && acc.ReadNodes != nil {
			d.cfg.Observer(acc.Label, acc.Dummy, acc.ReadNodes, acc.WriteNodes)
		}
		return out, err
	}
	return d.forkAccess(op, addr, data)
}

// runEngine executes one Fork access, reporting it to the observer.
func (d *Device) runEngine() error {
	a, err := d.eng.Run()
	if err != nil {
		return err
	}
	if d.cfg.Observer != nil {
		d.cfg.Observer(a.Label, a.Dummy(), a.ReadNodes, a.WriteNodes)
	}
	return nil
}

// forkAccess runs one operation through the Fork engine: enqueue the
// request, then run engine accesses until it is served.
func (d *Device) forkAccess(op pathoram.Op, addr uint64, data []byte) ([]byte, error) {
	// Step-1 stash shortcut, valid because the synchronous API guarantees
	// no concurrent in-flight request for the address unless queued. A
	// stash hit causes no memory traffic and is therefore not reported
	// to the Observer (see the DeviceConfig.Observer contract).
	//
	// The block is still remapped, like the baseline's Step 1: serving it
	// under its old label would let a stash-hit write produce a modified
	// block whose stale tree copy shares the still-current label — two
	// same-label copies with different payloads on one path, which a
	// crash-restored engine (reading full paths again) could resolve the
	// wrong way.
	if !d.eng.HasAddr(addr) {
		if _, ok := d.ctl.Stash().Get(addr); ok {
			_, _, next := d.pos.Remap(addr)
			return d.ctl.FetchBlock(op, addr, next, data)
		}
	}
	old, _, next := d.pos.Remap(addr)
	d.nextID++
	var out []byte
	served := false
	it := &fork.Item{ID: d.nextID, Addr: addr, OldLabel: old, NewLabel: next}
	it.Serve = func() error {
		o, err := d.ctl.FetchBlock(op, addr, next, data)
		out, served = o, true
		return err
	}
	if !d.eng.Enqueue(it) {
		return nil, fmt.Errorf("forkoram: label queue rejected request (full of reals)")
	}
	// The engine serves by overlap order; with a synchronous caller the
	// item is served within at most QueueSize accesses (aging guards the
	// pathological case).
	for i := 0; i < 32*d.cfg.QueueSize && !served; i++ {
		if err := d.runEngine(); err != nil {
			return nil, err
		}
	}
	if !served {
		return nil, fmt.Errorf("forkoram: request starved (engine bug)")
	}
	return out, nil
}

// Batch executes a set of operations, admitting as many as possible into
// the label queue before draining, so Fork Path's scheduling can reorder
// them for path overlap. Results are positional: for reads, the payload;
// for writes, nil. Operations on the same address keep program order.
//
// The whole batch is validated up front: a malformed op (address out of
// range, wrong payload size) rejects the batch before any operation runs,
// with no state change and nothing counted in Stats. Errors during
// execution poison the device (see ErrPoisoned): some operations may
// have been applied, and the returned results must be discarded.
func (d *Device) Batch(ops []BatchOp) ([][]byte, error) {
	if err := d.enter(); err != nil {
		return nil, err
	}
	defer d.leave()
	return d.batch(ops)
}

func (d *Device) batch(ops []BatchOp) ([][]byte, error) {
	if d.poisoned != nil {
		return nil, d.poisoned
	}
	for i, op := range ops {
		if err := d.checkAddr(op.Addr); err != nil {
			return nil, fmt.Errorf("forkoram: batch op %d: %w", i, err)
		}
		if op.Write && len(op.Data) != d.cfg.BlockSize {
			return nil, fmt.Errorf("forkoram: batch op %d: payload %d bytes, want %d",
				i, len(op.Data), d.cfg.BlockSize)
		}
	}
	results := make([][]byte, len(ops))
	if d.base != nil || len(ops) == 0 {
		// Baseline has no scheduling; run sequentially.
		for i, op := range ops {
			var err error
			if op.Write {
				err = d.write(op.Addr, op.Data)
			} else {
				results[i], err = d.read(op.Addr)
			}
			if err != nil {
				return nil, err
			}
		}
		return results, nil
	}
	pendingCount := 0
	next := 0
	admit := func() {
		for next < len(ops) && d.eng.CanEnqueue() {
			i := next
			op := ops[i]
			old, _, nl := d.pos.Remap(op.Addr)
			d.nextID++
			pop := pathoram.OpRead
			if op.Write {
				pop = pathoram.OpWrite
				d.writes++
			} else {
				d.reads++
			}
			data := op.Data
			newLabel := nl
			addr := op.Addr
			it := &fork.Item{ID: d.nextID, Addr: addr, OldLabel: old, NewLabel: newLabel}
			it.Serve = func() error {
				// Concurrent serve stage: record the stash work on the
				// in-flight access instead of executing it here; the
				// result lands via the callback when the access's turn
				// executes. pendingCount still falls NOW — the engine's
				// admission arithmetic must not depend on worker timing.
				if d.ctl.DeferServe(pop, addr, newLabel, data, func(o []byte, _ error) {
					if !op.Write {
						results[i] = o
					}
				}) {
					pendingCount--
					return nil
				}
				o, err := d.ctl.FetchBlock(pop, addr, newLabel, data)
				if !op.Write {
					results[i] = o
				}
				pendingCount--
				return err
			}
			if !d.eng.Enqueue(it) {
				break
			}
			pendingCount++
			next++
		}
	}
	if len(ops) > 1 && d.cfg.PipelineDepth > 1 {
		started := d.sessionOpen
		if !started {
			ok, perr := d.ctl.StartPipelineOpts(d.pipelineOpts())
			if perr != nil {
				// Malformed pipeline options are a configuration bug caught
				// before any state is touched — reject like validation, no
				// poison.
				return nil, perr
			}
			started = ok
			d.sessionOpen = ok && d.cfg.CrossWindow
		}
		if started {
			err := d.batchPipelined(ops, admit, &pendingCount, &next, d.cfg.ServeWorkers >= 2)
			if d.sessionOpen {
				// Cross-window seam: wait for this window's accesses to
				// retire, leave workers and in-flight writebacks armed for
				// the next window.
				if err == nil {
					err = d.ctl.FlushPipelineWindow()
				}
				if err != nil {
					// Abort tears the whole session down (drain + join)
					// before the poison below fail-stops the device; the
					// teardown re-reports the already-latched error.
					_ = d.endSession()
				}
			} else {
				if serr := d.ctl.StopPipeline(); err == nil {
					err = serr
				}
			}
			if err != nil {
				d.sessionOpen = false
				d.poison(err)
				return nil, err
			}
			return results, nil
		}
	}
	if err := d.endSession(); err != nil {
		d.poison(err)
		return nil, d.poisoned
	}
	admit()
	guard := 0
	for pendingCount > 0 || next < len(ops) {
		if err := d.runEngine(); err != nil {
			d.poison(err)
			return nil, err
		}
		admit()
		if guard++; guard > 64*(len(ops)+d.cfg.QueueSize) {
			err := fmt.Errorf("forkoram: batch failed to drain (engine bug)")
			d.poison(err)
			return nil, err
		}
	}
	return results, nil
}

// pipelineOpts shapes one pipelined dispatch window from the device
// config. With ServeWorkers >= 2 the Observer is delivered by the
// stage at retire time (program order) instead of by the drive loop,
// and the mid-serve chaos kill point is armed.
func (d *Device) pipelineOpts() pathoram.PipelineOpts {
	o := pathoram.PipelineOpts{
		Depth:          d.cfg.PipelineDepth,
		ServeWorkers:   d.cfg.ServeWorkers,
		WritebackQueue: d.cfg.WritebackQueue,
	}
	if o.ServeWorkers >= 2 {
		o.Observer = d.cfg.Observer
		o.Kill = d.midServeKill
	}
	return o
}

// batchPipelined drains one batch through the intra-shard pipeline.
// The drive loop is the serial loop unrolled one phase deeper — Begin,
// the WriteStep refill, Finish — with two pipeline hooks added at the
// stage boundaries: FlushWriteback hands the finished access's refill to
// the writeback worker, and Prefetch (after admission, when the engine
// has committed its next schedule entry) starts fetching the next path.
// The admission cadence — one admit() sweep after every completed
// access — matches the serial loop exactly, so the engine sees the same
// queue states and emits the same schedule at every depth.
// With concurrent=true (ServeWorkers >= 2) the drive loop is the same
// — the engine still runs serially here and emits the identical
// schedule — but each finished access is sealed into the concurrent
// stage via CommitAccess (cross-checked against the engine's reported
// footprint) instead of having already executed inline, and the
// Observer fires at retire time inside the stage rather than here.
func (d *Device) batchPipelined(ops []BatchOp, admit func(), pendingCount, next *int, concurrent bool) error {
	admit()
	guard := 0
	for *pendingCount > 0 || *next < len(ops) {
		a, err := d.eng.Begin()
		if err != nil {
			return err
		}
		for {
			_, _, done, err := d.eng.WriteStep(a)
			if err != nil {
				return err
			}
			if done {
				break
			}
		}
		if err := d.eng.Finish(a); err != nil {
			return err
		}
		if concurrent {
			deps := d.eng.LastDeps()
			if err := d.ctl.CommitAccess(pathoram.AccessDeps{
				Key:      deps.Key,
				Label:    deps.Label,
				ReadFrom: deps.ReadFrom,
				Stop:     deps.Stop,
				Dummy:    deps.Dummy,
			}); err != nil {
				return err
			}
		} else {
			if err := d.ctl.FlushWriteback(); err != nil {
				return err
			}
			if d.cfg.Observer != nil {
				d.cfg.Observer(a.Label, a.Dummy(), a.ReadNodes, a.WriteNodes)
			}
		}
		admit()
		if d.midBatchKill != nil && d.midBatchKill() {
			return errKilled
		}
		if *pendingCount > 0 || *next < len(ops) {
			if label, from, ok := d.eng.NextScheduled(); ok && from <= d.tr.LeafLevel() {
				d.ctl.Prefetch(label, from)
			}
		}
		if guard++; guard > 64*(len(ops)+d.cfg.QueueSize) {
			return fmt.Errorf("forkoram: batch failed to drain (engine bug)")
		}
	}
	return nil
}

// BatchOp is one operation of a Batch.
type BatchOp struct {
	Addr  uint64
	Write bool
	Data  []byte // writes only
}

// RetryStats returns the controller's transient-failure retry counters.
func (d *Device) RetryStats() pathoram.RetryStats { return d.ctl.Retries() }

// FaultCounts returns the faults injected so far; ok is false when the
// device was created without a fault schedule (DeviceConfig.Faults nil).
func (d *Device) FaultCounts() (c faults.Counts, ok bool) {
	if d.inj == nil {
		return c, false
	}
	return d.inj.Counts(), true
}

// Stats returns cumulative device statistics. Reads and Writes count
// only admitted operations: requests rejected by validation (address out
// of range, wrong payload size) or by a poisoned device do not appear.
func (d *Device) Stats() DeviceStats {
	st := DeviceStats{
		Reads:      d.reads,
		Writes:     d.writes,
		Stash:      d.ctl.Stash().Stats(),
		PathLength: d.tr.Levels(),
		Pipeline:   d.ctl.PipelineStats(),
	}
	c := d.store.Counters()
	st.BucketReads, st.BucketWrites = c.BucketReads, c.BucketWrites
	if d.eng != nil {
		es := d.eng.Stats()
		st.RealAccesses, st.DummyAccesses = es.RealAccesses, es.DummyAccesses
	} else {
		st.RealAccesses = d.reads + d.writes
	}
	st.Storage = d.storageStats()
	return st
}
