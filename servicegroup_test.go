package forkoram

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGroupCommitCoalesces: concurrent writers racing the admission
// queue must be served in multi-request windows — fewer journal syncs
// than writes, every op accounted to exactly one group.
func TestGroupCommitCoalesces(t *testing.T) {
	cfg := testServiceConfig(Fork)
	cfg.QueueDepth = 8
	cfg.CheckpointEvery = 1 << 30
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	const rounds, writers = 25, 4
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if err := svc.Write(ctx, uint64(w), chaosPayload(32, uint64(r), uint64(w)+1)); err != nil {
					t.Error(err)
				}
			}(w)
		}
		wg.Wait()
	}
	st := svc.Stats()
	const total = rounds * writers
	if st.Writes != total || st.GroupedOps != total {
		t.Fatalf("writes %d, grouped ops %d, want %d", st.Writes, st.GroupedOps, total)
	}
	if st.WALSyncs >= total {
		t.Fatalf("%d syncs for %d writes: group commit never amortized a sync", st.WALSyncs, total)
	}
	if st.Groups == st.Writes {
		t.Fatal("every window was a singleton: coalescing never engaged")
	}
	var hist uint64
	for _, n := range st.GroupSizes {
		hist += n
	}
	if hist != st.Groups {
		t.Fatalf("histogram holds %d windows, Groups says %d", hist, st.Groups)
	}
	t.Logf("%d writes in %d groups, %d syncs, hist %v", st.Writes, st.Groups, st.WALSyncs, st.GroupSizes)
}

// TestGroupMaxSizeBound: with a deterministic backlog larger than
// MaxGroupSize, no dispatch window may exceed the bound.
func TestGroupMaxSizeBound(t *testing.T) {
	entered, gate := make(chan struct{}), make(chan struct{})
	cfg := testServiceConfig(Fork)
	cfg.QueueDepth = 8
	cfg.MaxGroupSize = 2
	cfg.CheckpointEvery = 1 << 30
	cfg.crashHook = blockingHook(entered, gate)
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := svc.Write(ctx, 0, chaosPayload(32, 1, 1)); err != nil {
			t.Error(err)
		}
	}()
	<-entered // worker held inside write 0; build a 6-deep backlog behind it
	for w := 1; w <= 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := svc.Write(ctx, uint64(w), chaosPayload(32, 1, uint64(w)+1)); err != nil {
				t.Error(err)
			}
		}(w)
	}
	// Admission is a buffered channel send, so "queued" is observable only
	// indirectly; give the senders a moment, then release the worker.
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()
	st := svc.Stats()
	if st.Writes != 7 {
		t.Fatalf("writes %d, want 7", st.Writes)
	}
	for b := 2; b < len(st.GroupSizes); b++ {
		if st.GroupSizes[b] != 0 {
			t.Fatalf("window larger than MaxGroupSize=2 dispatched: hist %v", st.GroupSizes)
		}
	}
	if st.GroupSizes[1] == 0 {
		t.Fatalf("backlog of 6 never produced a size-2 window: hist %v", st.GroupSizes)
	}
}

// TestGroupLinger: with a linger window, two writes landing within it
// must share one group and one journal sync even when the second write
// arrives after the worker has already drained the queue dry.
func TestGroupLinger(t *testing.T) {
	cfg := testServiceConfig(Fork)
	cfg.QueueDepth = 8
	cfg.GroupLinger = 300 * time.Millisecond
	cfg.CheckpointEvery = 1 << 30
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w == 1 {
				time.Sleep(20 * time.Millisecond) // inside the linger window
			}
			if err := svc.Write(ctx, uint64(w), chaosPayload(32, 2, uint64(w)+1)); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	st := svc.Stats()
	if st.Groups != 1 || st.GroupedOps != 2 || st.WALSyncs != 1 {
		t.Fatalf("linger did not coalesce: groups %d, grouped ops %d, syncs %d",
			st.Groups, st.GroupedOps, st.WALSyncs)
	}
}

// TestGroupFairnessReaderNotStarved: a saturating writer pool must not
// starve a reader — FIFO admission puts every read in the next window,
// so all reads complete while the writers keep hammering.
func TestGroupFairnessReaderNotStarved(t *testing.T) {
	cfg := testServiceConfig(Fork)
	cfg.QueueDepth = 8
	cfg.CheckpointEvery = 1 << 30
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := uint64(1); !stop.Load(); i++ {
				if err := svc.Write(ctx, uint64(w), chaosPayload(32, uint64(w), i)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	// The reader owns addr 60, which no writer touches: every read must
	// return the zero block, promptly, under full write saturation.
	done := make(chan struct{})
	go func() {
		defer close(done)
		zero := make([]byte, 32)
		for i := 0; i < 50; i++ {
			got, err := svc.Read(ctx, 60)
			if err != nil {
				t.Errorf("read %d: %v", i, err)
				return
			}
			if !bytes.Equal(got, zero) {
				t.Errorf("read %d returned non-zero block", i)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Error("reader starved: 50 reads did not complete under write saturation")
	}
	stop.Store(true)
	wg.Wait()
	if st := svc.Stats(); st.Reads < 50 {
		t.Fatalf("reads %d, want >= 50", st.Reads)
	}
}

// TestGroupInvalidOpIsolated: an invalid request coalesced into a
// window is answered with its own validation error without poisoning
// its neighbours (which must commit durably and be acknowledged).
func TestGroupInvalidOpIsolated(t *testing.T) {
	entered, gate := make(chan struct{}), make(chan struct{})
	cfg := testServiceConfig(Fork)
	cfg.QueueDepth = 8
	cfg.CheckpointEvery = 1 << 30
	cfg.crashHook = blockingHook(entered, gate)
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := svc.Write(ctx, 0, chaosPayload(32, 3, 1)); err != nil {
			t.Error(err)
		}
	}()
	<-entered
	var badErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		badErr = svc.Write(ctx, 1, []byte{1, 2, 3}) // wrong payload size
	}()
	for w := 2; w <= 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := svc.Write(ctx, uint64(w), chaosPayload(32, 3, uint64(w))); err != nil {
				t.Errorf("write %d: %v", w, err)
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()
	if badErr == nil || errors.Is(badErr, errKilled) {
		t.Fatalf("malformed write in a group returned %v, want a validation error", badErr)
	}
	for w := 2; w <= 4; w++ {
		got, err := svc.Read(ctx, uint64(w))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, chaosPayload(32, 3, uint64(w))) {
			t.Fatalf("write %d lost after sharing a window with an invalid op", w)
		}
	}
}

// TestGroupMixedKindsInterleave: batches, writes, and reads from many
// goroutines — with disjoint address ranges so each can assert
// read-your-writes — exercising mixed-kind windows and the span-based
// result distribution under -race.
func TestGroupMixedKindsInterleave(t *testing.T) {
	cfg := testServiceConfig(Fork)
	cfg.QueueDepth = 8
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, perG, rounds = 6, 8, 18
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			base := uint64(g * perG)
			last := make(map[uint64][]byte)
			for i := 0; i < rounds; i++ {
				switch i % 3 {
				case 0: // write
					addr := base + uint64(i)%perG
					data := chaosPayload(32, uint64(g)+10, uint64(i)+1)
					if err := svc.Write(ctx, addr, data); err != nil {
						t.Errorf("g%d write: %v", g, err)
						return
					}
					last[addr] = data
				case 1: // batch: one write + one read-back of an own address
					wa, ra := base+uint64(i)%perG, base+uint64(i+1)%perG
					data := chaosPayload(32, uint64(g)+20, uint64(i)+1)
					out, err := svc.Batch(ctx, []BatchOp{
						{Addr: wa, Write: true, Data: data},
						{Addr: ra},
					})
					if err != nil {
						t.Errorf("g%d batch: %v", g, err)
						return
					}
					last[wa] = data
					want := last[ra]
					if want == nil {
						want = make([]byte, 32)
					}
					if !bytes.Equal(out[1], want) {
						t.Errorf("g%d batch read diverged at addr %d", g, ra)
						return
					}
				default: // read
					addr := base + uint64(i)%perG
					got, err := svc.Read(ctx, addr)
					if err != nil {
						t.Errorf("g%d read: %v", g, err)
						return
					}
					want := last[addr]
					if want == nil {
						want = make([]byte, 32)
					}
					if !bytes.Equal(got, want) {
						t.Errorf("g%d lost write at addr %d", g, addr)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	st := svc.Stats()
	if want := uint64(goroutines * rounds); st.GroupedOps != want {
		t.Fatalf("grouped ops %d, want %d (every request in exactly one window)", st.GroupedOps, want)
	}
}
