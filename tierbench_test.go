package forkoram

import (
	"testing"
	"time"
)

// TestTierBenchSmoke runs the tier comparison at a toy scale: every
// configuration must complete with zero front-door errors, the remote
// runs must show retry-absorbed transients (or none injected), and the
// RAM-tier runs must serve reads from memory.
func TestTierBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("tier bench smoke is seconds-long")
	}
	res, err := RunTierBench(TierBenchConfig{
		Ops:                200,
		Clients:            2,
		RemoteReadLatency:  time.Microsecond,
		RemoteWriteLatency: 2 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 5 {
		t.Fatalf("got %d runs", len(res.Runs))
	}
	for _, run := range res.Runs {
		if run.Ops == 0 || run.OpsPerSec <= 0 {
			t.Fatalf("run %s measured nothing: %+v", run.Tier, run)
		}
	}
	for _, tier := range []string{"disk+tier", "remote+tier"} {
		if run := res.Run(tier); run.Storage.Tier.ReadHits == 0 {
			t.Errorf("%s run never hit the RAM tier", tier)
		}
	}
	for _, tier := range []string{"remote", "remote+tier"} {
		st := res.Run(tier).Storage
		if st.Remote.ReadCalls+st.Remote.WriteCalls == 0 {
			t.Errorf("%s run never touched the remote", tier)
		}
		if injected := st.Remote.TransientReads + st.Remote.TransientWrites; injected > 0 &&
			st.Retry.Recovered == 0 {
			t.Errorf("%s run injected %d transients but the retry layer recovered none", tier, injected)
		}
	}
}
