package forkoram

import (
	"testing"
	"time"
)

// TestXWSweepSmoke runs the cross-window sweep at toy scale: every
// (depth, workers) pair must measure both sides, stamp its scheduler
// width, and engage the device pipeline in both modes. It does NOT
// assert the speedup — on a loaded single-core CI host the toy-scale
// ratio is noise; the performance claim is `make bench-xw`'s job
// (-require-mc at real scale).
func TestXWSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("xw sweep smoke is seconds-long")
	}
	res, err := RunXWSweep(ServiceBenchConfig{
		Ops:           160,
		Clients:       4,
		RemoteLatency: 300 * time.Microsecond,
	}, [][2]int{{4, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(res.Runs))
	}
	run := res.Runs[0]
	if run.Gomaxprocs == 0 || run.NumCPU == 0 {
		t.Fatalf("cell missing gomaxprocs/numcpu stamp: %+v", run)
	}
	if run.Barriered.OpsPerSec <= 0 || run.CrossWindow.OpsPerSec <= 0 {
		t.Fatalf("cell depth=%d workers=%d measured nothing: %+v", run.Depth, run.Workers, run)
	}
	if run.Speedup <= 0 {
		t.Fatalf("speedup not computed: %+v", run)
	}
	if run.Barriered.Pipeline.Windows == 0 || run.CrossWindow.Pipeline.Windows == 0 {
		t.Fatalf("a side never entered the pipeline: barriered %d windows, xw %d windows",
			run.Barriered.Pipeline.Windows, run.CrossWindow.Pipeline.Windows)
	}
	// The new seam counter must tick in both modes: one turnaround per
	// window seam, measured whether or not the seam barriers.
	if run.Barriered.Pipeline.WindowTurnarounds == 0 || run.CrossWindow.Pipeline.WindowTurnarounds == 0 {
		t.Fatalf("seam turnarounds not counted: barriered %d, xw %d",
			run.Barriered.Pipeline.WindowTurnarounds, run.CrossWindow.Pipeline.WindowTurnarounds)
	}
}
