package forkoram

import "testing"

// TestShardedCrashChaosReduced runs a reduced per-shard crash campaign
// in the normal test suite; `make chaos` / forksim -crash-shards run
// the full 1000-schedule one.
func TestShardedCrashChaosReduced(t *testing.T) {
	rep := RunShardedCrashChaos(ShardedCrashChaosConfig{Seed: 0x5a4d, Schedules: 25, Faults: true})
	t.Logf("\n%s", rep.String())
	if !rep.Ok() {
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
	}
	if rep.Crashes == 0 {
		t.Fatal("campaign injected no crashes")
	}
	if rep.LostAcks != 0 || rep.SilentCorruptions != 0 {
		t.Fatalf("lost acks %d, silent corruptions %d", rep.LostAcks, rep.SilentCorruptions)
	}
	if rep.DownEvents == 0 || rep.SiblingReads == 0 || rep.SiblingWrites == 0 {
		t.Fatalf("isolation property never exercised: %d down events, %d sibling reads, %d sibling writes",
			rep.DownEvents, rep.SiblingReads, rep.SiblingWrites)
	}
}

// TestShardedCrashChaosKillsEveryShard checks a moderately sized
// campaign kills every shard index at least once — otherwise the
// per-shard claim silently degrades to "kills shard 0".
func TestShardedCrashChaosKillsEveryShard(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a larger campaign")
	}
	rep := RunShardedCrashChaos(ShardedCrashChaosConfig{Seed: 0xfeed5, Schedules: 80, Faults: true})
	if !rep.Ok() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	for i, n := range rep.ShardKills {
		if n == 0 {
			t.Errorf("shard %d never killed (kills: %v)", i, rep.ShardKills)
		}
	}
}

// TestReshardCrashChaosReduced runs a reduced mid-migration crash
// campaign in the normal test suite; `make chaos-reshard` / forksim
// -crash-reshard run the full 1000-schedule one. 25 schedules × 2
// variants covers every ReshardCrashPoint focus (rotation period 5).
func TestReshardCrashChaosReduced(t *testing.T) {
	rep := RunReshardCrashChaos(ReshardChaosConfig{Seed: 0x4e5d, Schedules: 25})
	t.Logf("\n%s", rep.String())
	if !rep.Ok() {
		for _, v := range rep.Violations {
			t.Errorf("violation: %s", v)
		}
	}
	if rep.LostAcks != 0 || rep.SilentCorruptions != 0 {
		t.Fatalf("lost acks %d, silent corruptions %d", rep.LostAcks, rep.SilentCorruptions)
	}
	for p := 0; p < numReshardPoints; p++ {
		if rep.PhaseHits[p] == 0 {
			t.Errorf("no kill ever landed at %s (hits: %v)", ReshardCrashPoint(p), rep.PhaseHits)
		}
	}
	if rep.Rebuilds == 0 || rep.Resumes == 0 {
		t.Fatalf("rebuild-and-resume never exercised: %d rebuilds, %d resumes", rep.Rebuilds, rep.Resumes)
	}
	if rep.MigReads == 0 || rep.MigWrites == 0 {
		t.Fatalf("no-full-stop property never exercised: %d reads, %d writes during migration",
			rep.MigReads, rep.MigWrites)
	}
	if rep.Migrations < uint64(rep.Schedules) {
		t.Fatalf("only %d cutovers committed across %d schedules", rep.Migrations, rep.Schedules)
	}
}
